// Kernel microbenchmarks (google-benchmark): the primitives whose speed
// the paper's "high performance" claim rests on — SpMM aggregation, dense
// encoding GEMM, whole-graph GCN inference, bit-parallel logic/fault
// simulation, and SCOAP/COP analysis passes.
//
// The parallel kernels (SpMM, GEMM, full inference, fault sim, COO->CSR)
// sweep the kernel-pool thread count (the trailing `threads` argument) so
// scaling is measured alongside absolute throughput. With GCNT_BENCH_JSON
// set, every result is also written as a flat JSON object (via
// bench_common) for the CI bench-regression gate (tools/bench_gate).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"
#include "cop/cop.h"
#include "gcn/model.h"
#include "gcn/quant.h"
#include "gen/generator.h"
#include "nn/layers.h"
#include "scoap/scoap.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "tensor/simd/simd.h"
#include "tensor/sparse.h"

namespace {

using namespace gcnt;

const std::vector<std::int64_t> kThreadSweep{1, 2, 4, 8};

const Netlist& shared_netlist(std::size_t gates) {
  static std::map<std::size_t, Netlist> cache;
  auto it = cache.find(gates);
  if (it == cache.end()) {
    GeneratorConfig config;
    config.seed = 0xBE;
    config.target_gates = gates;
    config.primary_inputs = 64;
    config.primary_outputs = 32;
    config.flip_flops = gates / 24;
    it = cache.emplace(gates, generate_circuit(config)).first;
  }
  return it->second;
}

void BM_SpmmAggregation(benchmark::State& state) {
  const auto gates = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  const Netlist& netlist = shared_netlist(gates);
  const GraphTensors tensors = build_graph_tensors(netlist);
  Matrix embedding(tensors.node_count(), 64, 0.5f);
  Matrix out;
  for (auto _ : state) {
    tensors.pred.spmm(embedding, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tensors.pred.nnz()));
}
BENCHMARK(BM_SpmmAggregation)
    ->ArgsProduct({{10000, 100000}, kThreadSweep})
    ->ArgNames({"gates", "threads"});

/// Cache-blocked SpMM: the column-tile sweep (tile 0 = untiled default).
/// A wide dense operand makes the tiling effect visible; the result is
/// bitwise identical at every width (tensor_test pins this).
void BM_SpmmTiled(benchmark::State& state) {
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  set_spmm_tile_cols(static_cast<std::size_t>(state.range(0)));
  const Netlist& netlist = shared_netlist(100000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  Matrix embedding(tensors.node_count(), 128, 0.5f);
  Matrix out;
  for (auto _ : state) {
    tensors.pred.spmm(embedding, out);
    benchmark::DoNotOptimize(out.data());
  }
  set_spmm_tile_cols(0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tensors.pred.nnz()));
}
BENCHMARK(BM_SpmmTiled)
    ->ArgsProduct({{0, 16, 32, 64}, {1, 8}})
    ->ArgNames({"tile", "threads"});

void BM_EncoderGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  Rng rng(3);
  Matrix x(n, 64);
  Matrix w(64, 128);
  w.xavier_init(rng);
  Matrix out;
  for (auto _ : state) {
    gemm(x, w, out, false, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EncoderGemm)
    ->ArgsProduct({{10000, 50000}, kThreadSweep})
    ->ArgNames({"rows", "threads"});

/// Single-thread GEMM per SIMD dispatch target (simd 0 = scalar,
/// 1 = avx2). The scalar/avx2 pair feeds the "SimdSpeedup.gemm" ratio
/// entry written by main(); the AVX2 leg skips on hosts without AVX2+FMA.
void BM_GemmSimd(benchmark::State& state) {
  const auto target = static_cast<SimdTarget>(state.range(0));
  if (!set_simd_target(target)) {
    state.SkipWithError("SIMD target unavailable on this host");
    return;
  }
  set_kernel_threads(1);
  Rng rng(3);
  Matrix x(20000, 64);
  x.xavier_init(rng);
  Matrix w(64, 128);
  w.xavier_init(rng);
  Matrix out;
  for (auto _ : state) {
    gemm(x, w, out, false, false);
    benchmark::DoNotOptimize(out.data());
  }
  reset_simd_target();
}
BENCHMARK(BM_GemmSimd)->ArgsProduct({{0, 1}})->ArgNames({"simd"});

/// Single-thread SpMM aggregation per SIMD dispatch target; pairs into
/// the "SimdSpeedup.spmm" ratio entry.
void BM_SpmmSimd(benchmark::State& state) {
  const auto target = static_cast<SimdTarget>(state.range(0));
  if (!set_simd_target(target)) {
    state.SkipWithError("SIMD target unavailable on this host");
    return;
  }
  set_kernel_threads(1);
  const Netlist& netlist = shared_netlist(100000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  Matrix embedding(tensors.node_count(), 64, 0.5f);
  Matrix out;
  for (auto _ : state) {
    tensors.pred.spmm(embedding, out);
    benchmark::DoNotOptimize(out.data());
  }
  reset_simd_target();
  // No SetItemsProcessed: both legs must record real_time_ns so the
  // scalar/avx2 ratio in main() is a plain time quotient.
}
BENCHMARK(BM_SpmmSimd)->ArgsProduct({{0, 1}})->ArgNames({"simd"});

/// Dense layer per precision tier (precision 0 = fp32 fused GEMM,
/// 1 = int8 dot_u8s8 with the dequant+bias+ReLU epilogue). The int8 leg
/// pays the per-iteration activation quantization the real forward pays
/// per layer. Feeds the "QuantSpeedup.gemm" ratio entry in main().
void BM_GemmInt8(benchmark::State& state) {
  const bool int8 = state.range(0) != 0;
  set_kernel_threads(1);
  Rng rng(3);
  Matrix x(20000, 128);
  x.xavier_init(rng);
  Linear layer(128, 128, rng);
  Matrix out;
  if (int8) {
    const QuantizedLinear q = quantize_linear(layer);
    QuantizedTensor qx;
    for (auto _ : state) {
      quantize_tensor(x, qx);
      quantized_linear_forward(qx, q, layer.bias.value, out, /*relu=*/true);
      benchmark::DoNotOptimize(out.data());
    }
  } else {
    for (auto _ : state) {
      gemm_bias_act(x, layer.weight.value, layer.bias.value, out,
                    /*relu=*/true);
      benchmark::DoNotOptimize(out.data());
    }
  }
  // No SetItemsProcessed: both legs record real_time_ns so the ratio in
  // main() is a plain time quotient.
}
BENCHMARK(BM_GemmInt8)->ArgsProduct({{0, 1}})->ArgNames({"precision"});

/// Single-thread SpMM aggregation per precision tier (precision 0 = fp32
/// CsrMatrix::spmm, 1 = int8 spmm_q8). The dense operand is quantized
/// once outside the loop: in the real forward one activation encode
/// serves both the pred and succ SpMMs, so the kernel comparison is the
/// honest one. 128 columns x ~100k rows keeps the gathered working set
/// well past the LLC, where the u8 codes' 4x bandwidth advantage is the
/// point. Feeds "QuantSpeedup.spmm" (gated >= 1.5 in the baseline).
void BM_SpmmInt8(benchmark::State& state) {
  const bool int8 = state.range(0) != 0;
  set_kernel_threads(1);
  const Netlist& netlist = shared_netlist(100000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  Rng rng(11);
  Matrix embedding(tensors.node_count(), 128);
  embedding.xavier_init(rng);
  Matrix out;
  if (int8) {
    QuantizedTensor q;
    quantize_tensor(embedding, q);
    for (auto _ : state) {
      spmm_q8(tensors.pred, q, out);
      benchmark::DoNotOptimize(out.data());
    }
  } else {
    for (auto _ : state) {
      tensors.pred.spmm(embedding, out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  // No SetItemsProcessed: see BM_GemmInt8.
}
BENCHMARK(BM_SpmmInt8)->ArgsProduct({{0, 1}})->ArgNames({"precision"});

/// Dense layer with the bias+ReLU epilogue either fused into the GEMM
/// output pass (gemm_bias_act) or applied as separate passes afterwards.
void BM_LinearForward(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  set_kernel_threads(1);
  Rng rng(3);
  Matrix x(20000, 128);
  x.xavier_init(rng);
  Matrix w(128, 128);
  w.xavier_init(rng);
  const Matrix bias(1, 128, 0.1f);
  Matrix out;
  for (auto _ : state) {
    if (fused) {
      gemm_bias_act(x, w, bias, out, /*relu=*/true);
    } else {
      gemm(x, w, out, false, false);
      const SimdOps& ops = simd_ops();
      for (std::size_t r = 0; r < out.rows(); ++r) {
        ops.bias_add(out.row(r), bias.row(0), out.cols());
      }
      ops.relu(out.data(), out.rows() * out.cols());
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LinearForward)->ArgsProduct({{0, 1}})->ArgNames({"fused"});

/// SpMM with the bias+ReLU epilogue fused per (row, tile) slice versus
/// separate bias/ReLU passes over the full output.
void BM_SpmmBiasRelu(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  set_kernel_threads(1);
  const Netlist& netlist = shared_netlist(100000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  Matrix embedding(tensors.node_count(), 64, 0.5f);
  const Matrix bias(1, 64, 0.1f);
  Matrix out;
  for (auto _ : state) {
    if (fused) {
      tensors.pred.spmm_bias_relu(embedding, bias, out);
    } else {
      tensors.pred.spmm(embedding, out);
      const SimdOps& ops = simd_ops();
      for (std::size_t r = 0; r < out.rows(); ++r) {
        ops.bias_add(out.row(r), bias.row(0), out.cols());
      }
      ops.relu(out.data(), out.rows() * out.cols());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tensors.pred.nnz()));
}
BENCHMARK(BM_SpmmBiasRelu)->ArgsProduct({{0, 1}})->ArgNames({"fused"});

/// Whole-graph inference with the CSR forms in node order (reorder 0)
/// versus RCM compute order (reorder 1). Results are bitwise identical;
/// only the SpMM gather locality changes.
void BM_GcnInferenceReorder(benchmark::State& state) {
  set_kernel_threads(8);
  set_graph_reorder(state.range(0) != 0 ? GraphReorder::kRcm
                                        : GraphReorder::kOff);
  const Netlist& netlist = shared_netlist(100000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  reset_graph_reorder();
  GcnConfig config;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  GcnModel model(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.infer(tensors));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(netlist.size()));
}
BENCHMARK(BM_GcnInferenceReorder)
    ->ArgsProduct({{0, 1}})
    ->ArgNames({"reorder"});

void BM_GcnFullInference(benchmark::State& state) {
  const auto gates = static_cast<std::size_t>(state.range(0));
  set_kernel_threads(static_cast<std::size_t>(state.range(1)));
  const Netlist& netlist = shared_netlist(gates);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnConfig config;
  config.embed_dims = {32, 64, 128};
  config.fc_dims = {64, 64, 128};
  GcnModel model(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.infer(tensors));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(netlist.size()));
}
BENCHMARK(BM_GcnFullInference)
    ->ArgsProduct({{10000, 100000}, {1, 8}})
    ->ArgNames({"gates", "threads"});

void BM_LogicSimBatch(benchmark::State& state) {
  const Netlist& netlist = shared_netlist(50000);
  LogicSimulator sim(netlist);
  Rng rng(5);
  const PatternBatch batch = sim.random_batch(rng);
  std::vector<std::uint64_t> values;
  for (auto _ : state) {
    sim.simulate(batch, values);
    benchmark::DoNotOptimize(values.data());
  }
  // 64 patterns per run.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_LogicSimBatch);

void BM_FaultSimBatch(benchmark::State& state) {
  set_kernel_threads(static_cast<std::size_t>(state.range(0)));
  const Netlist& netlist = shared_netlist(10000);
  LogicSimulator sim(netlist);
  ParallelFaultSimulator fault_sim(sim);
  Rng rng(7);
  const auto faults = sample_faults(netlist, 512, 9);
  for (auto _ : state) {
    std::vector<bool> detected(faults.size(), false);
    std::vector<std::uint64_t> words;
    const PatternBatch batch = sim.random_batch(rng);
    benchmark::DoNotOptimize(
        fault_sim.run_batch(batch, faults, detected, words));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_FaultSimBatch)->ArgsProduct({kThreadSweep})->ArgNames({"threads"});

void BM_ScoapFull(benchmark::State& state) {
  const Netlist& netlist = shared_netlist(100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_scoap(netlist));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(netlist.size()));
}
BENCHMARK(BM_ScoapFull);

void BM_ScoapIncrementalObserve(benchmark::State& state) {
  Netlist netlist = shared_netlist(50000);  // copy: we mutate it
  ScoapMeasures measures = compute_scoap(netlist);
  NodeId target = 0;
  for (NodeId v = netlist.size() / 2; v < netlist.size(); ++v) {
    if (is_logic(netlist.type(v))) {
      target = v;
      break;
    }
  }
  netlist.insert_observe_point(target);
  for (auto _ : state) {
    update_observability_after_observe(netlist, target, measures);
    benchmark::DoNotOptimize(measures.co.data());
  }
}
BENCHMARK(BM_ScoapIncrementalObserve);

void BM_CopFull(benchmark::State& state) {
  const Netlist& netlist = shared_netlist(100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_cop(netlist));
  }
}
BENCHMARK(BM_CopFull);

void BM_CooToCsr(benchmark::State& state) {
  set_kernel_threads(static_cast<std::size_t>(state.range(0)));
  const Netlist& netlist = shared_netlist(100000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::from_coo(tensors.pred_coo));
  }
}
BENCHMARK(BM_CooToCsr)->ArgsProduct({{1, 8}})->ArgNames({"threads"});

/// Console output as usual, plus a flat (name, value) record per run for
/// the CI regression gate: items/s when the benchmark reports it,
/// adjusted real time otherwise.
class JsonRecorder : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        entries_.emplace_back(run.benchmark_name() + ".items_per_second",
                              static_cast<double>(it->second));
      } else {
        entries_.emplace_back(run.benchmark_name() + ".real_time_ns",
                              run.GetAdjustedRealTime());
      }
    }
  }
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  gcnt::trace_set_thread_name("main");
  JsonRecorder reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  publish_kernel_pool_stats();
  set_kernel_threads(0);
  // Derived entries: single-thread AVX2-over-scalar speedups from the
  // BM_*Simd dispatch pairs (scalar time / avx2 time, so >= 1 means AVX2
  // wins). Committed to the baseline JSON, these put the vectorization
  // win under the same regression gate as every other number.
  std::vector<std::pair<std::string, double>> entries = reporter.entries();
  const auto find_entry = [&](const std::string& needle) -> const double* {
    for (const auto& entry : entries) {
      if (entry.first.find(needle) != std::string::npos) return &entry.second;
    }
    return nullptr;
  };
  const struct {
    const char* key;
    const char* scalar;
    const char* avx2;
  } kSpeedups[] = {
      {"SimdSpeedup.gemm", "BM_GemmSimd/simd:0", "BM_GemmSimd/simd:1"},
      {"SimdSpeedup.spmm", "BM_SpmmSimd/simd:0", "BM_SpmmSimd/simd:1"},
  };
  for (const auto& speedup : kSpeedups) {
    const double* scalar_ns = find_entry(speedup.scalar);
    const double* avx2_ns = find_entry(speedup.avx2);
    if (scalar_ns != nullptr && avx2_ns != nullptr && *avx2_ns > 0.0) {
      entries.emplace_back(speedup.key, *scalar_ns / *avx2_ns);
    }
  }
  // Int8-over-fp32 speedups from the BM_*Int8 precision pairs (fp32 time
  // / int8 time). "QuantSpeedup.spmm" carries the headline claim: the
  // committed baseline pins it >= 1.5 under the bench gate.
  const struct {
    const char* key;
    const char* fp32;
    const char* int8;
  } kQuantSpeedups[] = {
      {"QuantSpeedup.gemm", "BM_GemmInt8/precision:0",
       "BM_GemmInt8/precision:1"},
      {"QuantSpeedup.spmm", "BM_SpmmInt8/precision:0",
       "BM_SpmmInt8/precision:1"},
  };
  for (const auto& speedup : kQuantSpeedups) {
    const double* fp32_ns = find_entry(speedup.fp32);
    const double* int8_ns = find_entry(speedup.int8);
    if (fp32_ns != nullptr && int8_ns != nullptr && *int8_ns > 0.0) {
      entries.emplace_back(speedup.key, *fp32_ns / *int8_ns);
    }
  }
  if (const char* path = std::getenv("GCNT_BENCH_JSON")) {
    if (!bench::write_bench_json(path, entries)) {
      std::cerr << "microbench: failed to write GCNT_BENCH_JSON to " << path
                << "\n";
      return 1;
    }
  }
  // With GCNT_STATS=1 the per-kernel calls/latency registry narrates where
  // the benchmark time went (spans go to GCNT_TRACE's atexit writer).
  if (stats_enabled()) StatsRegistry::instance().write_text(std::cerr);
  benchmark::Shutdown();
  return 0;
}
