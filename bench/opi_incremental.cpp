// Incremental OPI inference benchmark: dirty-cone re-propagation
// (gcn/incremental.h) vs a full whole-graph forward, on the workload the
// OPI loop actually runs — insert a small batch of observation points,
// then re-predict. At a dirty fraction below ~5% the incremental path
// must be several times faster than re-running GcnModel::infer while
// producing bit-identical logits (verified every round; mismatch fails
// the binary).
//
// Sizes sweep 10^4..3*10^5 gates capped by GCNT_BENCH_MAX_NODES, so the
// per-push CI smoke run (cap 10^4) and the nightly-scale run (full sweep)
// share JSON key prefixes. With GCNT_BENCH_JSON=<path> a flat record per
// size is written for tools/bench_gate:
//
//   OPI_Incremental/nodes:N.full_infer.real_time_ns   (gated, lower better)
//   OPI_Incremental/nodes:N.update.real_time_ns       (gated, lower better)
//   OPI_Incremental_speedup/nodes:N                   (context only)
//   OPI_Incremental_dirty_fraction/nodes:N            (context only)

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/trace.h"
#include "gcn/incremental.h"
#include "gen/generator.h"
#include "netlist/netlist.h"
#include "scoap/scoap.h"

namespace {

using namespace gcnt;

constexpr std::size_t kRounds = 5;     ///< insertion batches per size
constexpr std::size_t kBatch = 8;      ///< OPs per batch (late-stage OPI)
constexpr std::size_t kConeCap = 256;  ///< target fan-in cone bound

/// Valid OP targets with a bounded fan-in cone, spread across the graph.
/// (The SCOAP observability refresh walks the whole cone, so an unbounded
/// cone would make the dirty set graph-sized — real OPI targets sit in
/// bounded regions too.)
std::vector<NodeId> pick_targets(const Netlist& netlist, std::size_t count) {
  std::vector<NodeId> targets;
  const std::size_t step =
      std::max<std::size_t>(1, netlist.size() / (count * 4 + 1));
  for (NodeId v = 0; v < netlist.size() && targets.size() < count;
       v += static_cast<NodeId>(step)) {
    const CellType t = netlist.type(v);
    if (is_sink(t) || t == CellType::kInput) continue;
    if (netlist.fanin_cone(v, kConeCap).size() >= kConeCap) continue;
    targets.push_back(v);
  }
  return targets;
}

struct SizeResult {
  std::size_t nodes = 0;
  double full_infer_s = 0.0;  ///< mean whole-graph forward
  double update_s = 0.0;      ///< mean dirty-cone update (affected+update)
  double dirty_fraction = 0.0;
  bool identical = true;
  bool fallback_hit = false;
};

SizeResult run_size(const GcnModel& model, std::size_t gates) {
  GeneratorConfig config;
  config.seed = 0x0919;
  config.target_gates = gates;
  config.primary_inputs = 64;
  config.primary_outputs = 32;
  config.flip_flops = gates / 24;
  config.trap_fraction = 0.0;  // timing only
  Netlist netlist = generate_circuit(config);

  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);

  SizeResult result;
  result.nodes = netlist.size();
  TraceSpan size_span("opi_bench.size");
  size_span.arg("nodes", static_cast<double>(result.nodes));

  IncrementalGcnEngine engine(model);
  engine.refresh(tensors);

  const std::vector<NodeId> targets =
      pick_targets(netlist, kRounds * kBatch);
  const std::size_t rounds = targets.size() / kBatch;
  if (rounds == 0) {
    std::cerr << "opi_incremental: no valid targets at " << gates
              << " gates\n";
    return result;
  }

  double update_total = 0.0;
  double infer_total = 0.0;
  std::size_t dirty_total = 0;
  DirtyConeTracker tracker;
  for (std::size_t round = 0; round < rounds; ++round) {
    // The insertion batch, exactly as run_gcn_opi applies it.
    for (std::size_t i = 0; i < kBatch; ++i) {
      const NodeId target = targets[round * kBatch + i];
      const NodeId op = netlist.insert_observe_point(target);
      update_observability_after_observe(netlist, target, scoap);
      levels.resize(netlist.size(), 0);
      levels[op] = levels[target] + 1;
      const std::vector<NodeId> cone = netlist.fanin_cone(target);
      std::vector<NodeId> changed_rows;
      append_observe_point(tensors, netlist, target, op, scoap, cone,
                           &changed_rows);
      tracker.record_new_node(op);
      tracker.record_edge(target, op);
      for (NodeId v : changed_rows) tracker.record_feature(v);
    }
    tensors.rebuild_csr();

    // Incremental re-prediction: cone expansion + dirty-row forward.
    Timer update_timer;
    const std::vector<NodeId> dirty =
        tracker.affected(tensors, model.config().depth);
    engine.update(tensors, dirty);
    update_total += update_timer.seconds();
    tracker.clear();
    dirty_total += engine.last_dirty_rows();
    result.fallback_hit |= engine.last_was_full();

    // The from-scratch forward the incremental path replaces — also the
    // bit-identity check for this round.
    Timer infer_timer;
    const Matrix full = model.infer(tensors);
    infer_total += infer_timer.seconds();
    result.identical &= engine.logits() == full;
  }

  const auto r = static_cast<double>(rounds);
  result.full_infer_s = infer_total / r;
  result.update_s = update_total / r;
  result.dirty_fraction = static_cast<double>(dirty_total) /
                          (r * static_cast<double>(tensors.node_count()));
  return result;
}

}  // namespace

int main() {
  trace_set_thread_name("main");
  const std::size_t cap = bench::bench_max_nodes();
  const GcnModel model(bench::paper_model_config());

  std::cout << "# Incremental OPI inference: dirty-cone update vs full "
               "forward (batch of "
            << kBatch << " OPs per round, " << kRounds << " rounds)\n";
  std::cout << "nodes,full_infer_s,update_s,speedup,dirty_fraction,"
               "identical\n";
  Table table("Incremental OPI inference",
              {"#Nodes", "Full infer (s)", "Update (s)", "Speedup",
               "Dirty %", "Identical"});

  std::vector<std::pair<std::string, double>> entries;
  bool all_identical = true;
  for (const std::size_t gates : {10000ul, 100000ul, 300000ul}) {
    if (gates > cap) break;
    const SizeResult r = run_size(model, gates);
    if (r.nodes == 0) continue;
    const double speedup = r.full_infer_s / std::max(r.update_s, 1e-12);
    all_identical &= r.identical;

    std::cout << r.nodes << "," << Table::num(r.full_infer_s, 4) << ","
              << Table::num(r.update_s, 4) << "," << Table::num(speedup, 2)
              << "," << Table::num(100.0 * r.dirty_fraction, 2) << ","
              << (r.identical ? "yes" : "NO")
              << (r.fallback_hit ? " (fallback hit)" : "") << "\n";
    table.add_row({std::to_string(r.nodes), Table::num(r.full_infer_s, 4),
                   Table::num(r.update_s, 4), Table::num(speedup, 2),
                   Table::num(100.0 * r.dirty_fraction, 2),
                   r.identical ? "yes" : "NO"});

    const std::string base =
        "OPI_Incremental/nodes:" + std::to_string(r.nodes);
    entries.emplace_back(base + ".full_infer.real_time_ns",
                         r.full_infer_s * 1e9);
    entries.emplace_back(base + ".update.real_time_ns", r.update_s * 1e9);
    entries.emplace_back(
        "OPI_Incremental_speedup/nodes:" + std::to_string(r.nodes), speedup);
    entries.emplace_back(
        "OPI_Incremental_dirty_fraction/nodes:" + std::to_string(r.nodes),
        r.dirty_fraction);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nTarget: >= 3x per-iteration speedup at < 5% dirty "
               "fraction on >= 100k-gate designs.\n";

  if (const char* path = std::getenv("GCNT_BENCH_JSON")) {
    if (!bench::write_bench_json(path, entries)) {
      std::cerr << "opi_incremental: failed to write GCNT_BENCH_JSON to "
                << path << "\n";
      return 1;
    }
  }
  publish_kernel_pool_stats();
  if (stats_enabled()) StatsRegistry::instance().write_text(std::cerr);
  if (!all_identical) {
    std::cerr << "opi_incremental: incremental logits DIVERGED from full "
                 "inference\n";
    return 1;
  }
  return 0;
}
