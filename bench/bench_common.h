#pragma once
// Shared configuration for the table/figure reproduction harnesses.
//
// Knobs (environment variables):
//   GCNT_BENCH_GATES      gate budget per benchmark design (default 8000)
//   GCNT_BENCH_EPOCHS     GCN training epochs              (default 150)
//   GCNT_BENCH_MAX_NODES  size cap for the Fig. 10 sweep   (default 1000000)
//
// The labeled suite is cached under ./gcnt_bench_cache/ keyed by the gate
// budget, so consecutive bench binaries don't re-run the labeling oracle.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "gcn/model.h"
#include "gcn/trainer.h"

namespace gcnt::bench {

std::size_t bench_gates();
std::size_t bench_epochs();
std::size_t bench_max_nodes();

/// The paper's architecture: D=3, K=(32,64,128), FC=(64,64,128,2).
GcnConfig paper_model_config(int depth = 3, std::uint64_t seed = 2019);

/// The four Table-1 designs at bench_gates(), labeled (cached on disk).
std::vector<Dataset> load_suite();

/// Leave-one-design-out balanced training set excluding `held_out`.
std::vector<TrainGraph> balanced_training_set(
    const std::vector<Dataset>& suite, std::size_t held_out);

/// Writes a flat {"name": value, ...} JSON object — the format the
/// tools/bench_gate regression checker consumes (e.g. BENCH_ci.json in the
/// CI bench smoke gate). A "schema.version": 6 metadata key is prepended
/// (v3 added SIMD/reorder provenance, v4 the serve.* loadgen keys, v5 the
/// shard.* out-of-core keys, v6 the resolved "simd.target" / "precision"
/// numeric gauges and the "schema.precision" string); bench_gate skips
/// "schema." keys, so files from any schema version compare
/// interchangeably. Returns false on I/O failure.
bool write_bench_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& entries);

}  // namespace gcnt::bench
