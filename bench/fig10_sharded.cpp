// Figure 10, sharded out-of-core leg: whole-graph inference runtime and
// peak resident set vs graph size with the sharded engine (gcn/shard.h)
// holding one shard's working set at a time. This is the scale tier the
// per-push CI cannot reach — the nightly workflow drives the sweep to
// 10^7 nodes under a pinned peak-RSS budget, while the per-push
// scale-smoke job runs the small sizes plus the bit-identity sweep.
//
// Sizes sweep 3*10^4..10^7 gates capped by GCNT_BENCH_MAX_NODES (so the
// CI smoke cap of 3*10^4 and the nightly cap share JSON key prefixes).
//
// Knobs (environment variables):
//   GCNT_SHARDS                 shard count K              (default 8)
//   GCNT_HALO                   halo depth D               (default 2)
//   GCNT_SPILL_DIR              non-empty: spill off-shard blocks to disk
//   GCNT_SHARD_CHECK_MAX_NODES  run the monolithic engine and assert
//                               bitwise logit identity up to this size
//                               (default 200000; the whole point of
//                               sharding is that the monolithic engine
//                               does not fit at the top sizes)
//   GCNT_SHARD_SWEEP            comma list of shard counts — runs a
//   GCNT_HALO_SWEEP             comma list of halo depths — K x D
//                               bit-identity sweep at the smallest size
//
// Any identity violation makes the binary exit 1. With
// GCNT_BENCH_JSON=<path> a flat record is written for tools/bench_gate
// (schema v5 adds these shard.* keys):
//
//   shard.fig10/nodes:N.sharded_infer.real_time_ns  (gated, lower better)
//   shard.identical                                 (gated, 1 = all checks
//                                                    passed)
//   shard_rss/nodes:N.peak_kb                       (context only)
//   shard_blocks/nodes:N.count                      (context only)

#include <sys/resource.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/trace.h"
#include "gcn/shard.h"
#include "gen/generator.h"

namespace {

using namespace gcnt;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value ? static_cast<std::size_t>(std::strtoull(value, nullptr, 10))
               : fallback;
}

std::vector<std::size_t> env_list(const char* name) {
  std::vector<std::size_t> values;
  const char* value = std::getenv(name);
  if (!value) return values;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      values.push_back(
          static_cast<std::size_t>(std::strtoull(item.c_str(), nullptr, 10)));
    }
  }
  return values;
}

/// Process peak resident set in KB (ru_maxrss is KB on Linux). Monotone
/// across the sweep — the budget gate cares about the final peak.
double peak_rss_kb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss);
}

GraphTensors make_tensors(std::size_t gates, Netlist& netlist) {
  GeneratorConfig config;
  config.seed = 0xF16;  // same designs as fig10_scalability
  config.target_gates = gates;
  config.primary_inputs = 64;
  config.primary_outputs = 32;
  config.flip_flops = gates / 24;
  config.trap_fraction = 0.0;  // timing only
  netlist = generate_circuit(config);
  return build_graph_tensors(netlist);
}

ShardedGcnOptions engine_options(std::size_t shards, int halo,
                                 const std::string& spill_root,
                                 const std::string& tag) {
  ShardedGcnOptions options;
  options.shards = shards;
  options.halo = halo;
  if (!spill_root.empty()) options.spill_dir = spill_root + "/" + tag;
  return options;
}

}  // namespace

int main() {
  trace_set_thread_name("main");
  const std::size_t cap = bench::bench_max_nodes();
  const std::size_t shards = env_size("GCNT_SHARDS", 8);
  const int halo = static_cast<int>(env_size("GCNT_HALO", 2));
  const std::size_t check_cap = env_size("GCNT_SHARD_CHECK_MAX_NODES", 200000);
  const char* spill_env = std::getenv("GCNT_SPILL_DIR");
  const std::string spill_root = spill_env ? spill_env : "";
  GcnModel model(bench::paper_model_config());

  std::cout << "# Figure 10 (sharded): out-of-core inference, K=" << shards
            << " halo=" << halo
            << (spill_root.empty() ? " (in-memory blocks)"
                                   : " (spill: " + spill_root + ")")
            << "\nnodes,edges,sharded_s,peak_rss_kb,blocks,identical\n";
  Table table("Figure 10 sharded: inference runtime / peak RSS",
              {"#Nodes", "Sharded (s)", "Peak RSS (KB)", "Blocks",
               "Identical"});

  std::vector<std::pair<std::string, double>> entries;
  bool all_identical = true;
  bool any_check = false;
  std::size_t smallest = 0;

  for (std::size_t gates :
       {30000ul, 100000ul, 300000ul, 1000000ul, 3000000ul, 10000000ul}) {
    if (gates > cap) break;
    if (smallest == 0) smallest = gates;
    Netlist netlist;
    const GraphTensors tensors = make_tensors(gates, netlist);
    const std::size_t n = tensors.node_count();
    TraceSpan size_span("fig10.shard.size");
    size_span.arg("nodes", static_cast<double>(n));
    size_span.arg("shards", static_cast<double>(shards));

    ShardedGcnEngine engine(
        model, engine_options(shards, halo, spill_root,
                              "n" + std::to_string(gates)));
    Timer timer;
    const Matrix& logits = engine.refresh(tensors);
    const double seconds = timer.seconds();
    const double rss_kb = peak_rss_kb();
    const std::size_t blocks = engine.store().block_count();

    // Bitwise identity vs the monolithic forward, where it still fits.
    std::string identical = "(skipped)";
    if (n <= check_cap) {
      any_check = true;
      const bool match = logits == model.infer(tensors);
      identical = match ? "yes" : "NO";
      if (!match) all_identical = false;
    }

    std::cout << n << "," << netlist.edge_count() << ","
              << Table::num(seconds, 4) << "," << rss_kb << "," << blocks
              << "," << identical << "\n";
    table.add_row({std::to_string(n), Table::num(seconds, 4),
                   Table::num(rss_kb, 0), std::to_string(blocks), identical});

    const std::string key = "shard.fig10/nodes:" + std::to_string(n);
    entries.emplace_back(key + ".sharded_infer.real_time_ns",
                         seconds * 1e9);
    entries.emplace_back("shard_rss/nodes:" + std::to_string(n) + ".peak_kb",
                         rss_kb);
    entries.emplace_back("shard_blocks/nodes:" + std::to_string(n) + ".count",
                         static_cast<double>(blocks));
  }

  // K x D bit-identity sweep at the smallest swept size: every combination
  // must reproduce the monolithic logits exactly.
  const std::vector<std::size_t> sweep_shards = env_list("GCNT_SHARD_SWEEP");
  const std::vector<std::size_t> sweep_halos = env_list("GCNT_HALO_SWEEP");
  if (!sweep_shards.empty() && smallest > 0) {
    Netlist netlist;
    const GraphTensors tensors = make_tensors(smallest, netlist);
    const Matrix reference = model.infer(tensors);
    std::cout << "\n# bit-identity sweep at " << tensors.node_count()
              << " nodes\nshards,halo,identical\n";
    for (std::size_t k : sweep_shards) {
      for (std::size_t d :
           (sweep_halos.empty() ? std::vector<std::size_t>{1} : sweep_halos)) {
        any_check = true;
        ShardedGcnEngine engine(
            model, engine_options(k, static_cast<int>(d), spill_root,
                                  "sweep_k" + std::to_string(k) + "_d" +
                                      std::to_string(d)));
        const bool match = engine.refresh(tensors) == reference;
        if (!match) all_identical = false;
        std::cout << k << "," << d << "," << (match ? "yes" : "NO") << "\n";
      }
    }
  }

  if (any_check) {
    entries.emplace_back("shard.identical", all_identical ? 1.0 : 0.0);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nfinal peak RSS: " << peak_rss_kb() << " KB\n";

  if (const char* path = std::getenv("GCNT_BENCH_JSON")) {
    if (!bench::write_bench_json(path, entries)) {
      std::cerr << "fig10_sharded: failed to write GCNT_BENCH_JSON to "
                << path << "\n";
      return 1;
    }
  }
  publish_kernel_pool_stats();
  if (stats_enabled()) StatsRegistry::instance().write_text(std::cerr);

  if (!all_identical) {
    std::cerr << "fig10_sharded: sharded logits DIVERGED from the "
                 "monolithic forward\n";
    return 1;
  }
  return 0;
}
