// NN modules: finite-difference gradient checks and optimizer behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace gcnt {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

/// Scalar "loss" = sum of all entries of the layer output (so dL/dy = 1).
double linear_output_sum(const Linear& layer, const Matrix& x) {
  Matrix y;
  layer.forward(x, y);
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) acc += y.data()[i];
  return acc;
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(3);
  Linear layer(2, 2, rng);
  layer.weight.value.at(0, 0) = 1.0f;
  layer.weight.value.at(0, 1) = 2.0f;
  layer.weight.value.at(1, 0) = 3.0f;
  layer.weight.value.at(1, 1) = 4.0f;
  layer.bias.value.at(0, 0) = 0.5f;
  layer.bias.value.at(0, 1) = -0.5f;
  Matrix x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  Matrix y;
  layer.forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f + 6.0f + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f + 8.0f - 0.5f);
}

TEST(Linear, WeightGradientMatchesFiniteDifference) {
  Rng rng(17);
  Linear layer(3, 2, rng);
  const Matrix x = random_matrix(4, 3, rng);

  Matrix y;
  layer.forward(x, y);
  Matrix dy(y.rows(), y.cols(), 1.0f);
  Matrix dx;
  layer.backward(x, dy, dx);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      const float saved = layer.weight.value.at(r, c);
      layer.weight.value.at(r, c) = saved + eps;
      const double up = linear_output_sum(layer, x);
      layer.weight.value.at(r, c) = saved - eps;
      const double down = linear_output_sum(layer, x);
      layer.weight.value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(layer.weight.grad.at(r, c), numeric, 1e-2)
          << "weight (" << r << "," << c << ")";
    }
  }
}

TEST(Linear, InputGradientMatchesFiniteDifference) {
  Rng rng(19);
  Linear layer(3, 2, rng);
  Matrix x = random_matrix(2, 3, rng);
  Matrix y;
  layer.forward(x, y);
  Matrix dy(y.rows(), y.cols(), 1.0f);
  Matrix dx;
  layer.backward(x, dy, dx);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float saved = x.at(r, c);
      x.at(r, c) = saved + eps;
      const double up = linear_output_sum(layer, x);
      x.at(r, c) = saved - eps;
      const double down = linear_output_sum(layer, x);
      x.at(r, c) = saved;
      EXPECT_NEAR(dx.at(r, c), (up - down) / (2.0 * eps), 1e-2);
    }
  }
}

TEST(Linear, BiasGradientIsColumnSum) {
  Rng rng(23);
  Linear layer(2, 3, rng);
  const Matrix x = random_matrix(5, 2, rng);
  Matrix y;
  layer.forward(x, y);
  Matrix dy = random_matrix(5, 3, rng);
  Matrix dx;
  layer.backward(x, dy, dx);
  for (std::size_t c = 0; c < 3; ++c) {
    float want = 0.0f;
    for (std::size_t r = 0; r < 5; ++r) want += dy.at(r, c);
    EXPECT_NEAR(layer.bias.grad.at(0, c), want, 1e-5f);
  }
}

TEST(Linear, GradientsAccumulateAcrossCalls) {
  Rng rng(29);
  Linear layer(2, 2, rng);
  const Matrix x = random_matrix(3, 2, rng);
  Matrix y;
  layer.forward(x, y);
  Matrix dy(3, 2, 1.0f);
  Matrix dx;
  layer.backward(x, dy, dx);
  const float once = layer.weight.grad.at(0, 0);
  layer.backward(x, dy, dx);
  EXPECT_NEAR(layer.weight.grad.at(0, 0), 2.0f * once, 1e-5f);
}

TEST(Relu, ForwardClampsNegatives) {
  Matrix x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 2.0f;
  x.at(0, 3) = -0.5f;
  Matrix y;
  Relu::forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 0.0f);
}

TEST(Relu, BackwardMasksByActivation) {
  Matrix y(1, 3);
  y.at(0, 0) = 0.0f;
  y.at(0, 1) = 1.0f;
  y.at(0, 2) = 3.0f;
  Matrix dy(1, 3, 2.0f);
  Matrix dx;
  Relu::backward(y, dy, dx);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 2.0f);
}

TEST(Loss, UniformLogitsGiveLogC) {
  Matrix logits(2, 2, 0.0f);
  const std::vector<std::int32_t> labels{0, 1};
  const std::vector<float> weights{1.0f, 1.0f};
  Matrix dlogits;
  const double loss =
      softmax_cross_entropy(logits, labels, weights, nullptr, dlogits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(31);
  Matrix logits(3, 2);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const std::vector<std::int32_t> labels{0, 1, 1};
  const std::vector<float> weights{1.0f, 3.0f};
  Matrix dlogits;
  softmax_cross_entropy(logits, labels, weights, nullptr, dlogits);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      Matrix scratch;
      const float saved = logits.at(r, c);
      logits.at(r, c) = saved + eps;
      const double up =
          softmax_cross_entropy(logits, labels, weights, nullptr, scratch);
      logits.at(r, c) = saved - eps;
      const double down =
          softmax_cross_entropy(logits, labels, weights, nullptr, scratch);
      logits.at(r, c) = saved;
      EXPECT_NEAR(dlogits.at(r, c), (up - down) / (2.0 * eps), 1e-3);
    }
  }
}

TEST(Loss, RowSubsetIgnoresOtherRows) {
  Matrix logits(3, 2, 0.0f);
  logits.at(2, 0) = 100.0f;  // would dominate if included
  const std::vector<std::int32_t> labels{0, 0, 1};
  const std::vector<float> weights{1.0f, 1.0f};
  const std::vector<std::uint32_t> rows{0, 1};
  Matrix dlogits;
  const double loss =
      softmax_cross_entropy(logits, labels, weights, &rows, dlogits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_FLOAT_EQ(dlogits.at(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(dlogits.at(2, 1), 0.0f);
}

TEST(Loss, ClassWeightScalesGradient) {
  Matrix logits(1, 2, 0.0f);
  const std::vector<std::int32_t> labels{1};
  Matrix d1, d2;
  softmax_cross_entropy(logits, labels, {1.0f, 1.0f}, nullptr, d1);
  softmax_cross_entropy(logits, labels, {1.0f, 5.0f}, nullptr, d2);
  // Normalization divides by total weight, so the single-row gradient is
  // identical; the *loss mixing* across classes is what changes. Check the
  // normalized invariance explicitly.
  EXPECT_NEAR(d1.at(0, 0), d2.at(0, 0), 1e-6f);
}

TEST(Softmax, RowsSumToOne) {
  Matrix logits(2, 3);
  logits.at(0, 0) = 5.0f;
  logits.at(1, 2) = -3.0f;
  const Matrix p = softmax(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

/// Minimizing f(w) = ||w - target||^2 exercises an optimizer end to end.
template <typename Opt>
void optimize_quadratic(Opt& optimizer, std::size_t steps, float tolerance) {
  Param w(2, 2);
  w.value.fill(5.0f);
  Matrix target(2, 2, 1.0f);
  const std::vector<Param*> params{&w};
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < w.value.size(); ++i) {
      w.grad.data()[i] = 2.0f * (w.value.data()[i] - target.data()[i]);
    }
    optimizer.step(params);
  }
  for (std::size_t i = 0; i < w.value.size(); ++i) {
    EXPECT_NEAR(w.value.data()[i], 1.0f, tolerance);
  }
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  SgdOptimizer sgd(0.05f, 0.5f);
  optimize_quadratic(sgd, 200, 0.05f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  AdamOptimizer adam(0.2f);
  optimize_quadratic(adam, 300, 0.05f);
}

TEST(Optimizer, StepZeroesGradients) {
  Param w(1, 1);
  w.grad.at(0, 0) = 1.0f;
  SgdOptimizer sgd(0.1f);
  sgd.step({&w});
  EXPECT_FLOAT_EQ(w.grad.at(0, 0), 0.0f);
}

TEST(Optimizer, ChangedParamListThrows) {
  Param a(1, 1), b(1, 1);
  SgdOptimizer sgd(0.1f);
  sgd.step({&a});
  EXPECT_THROW(sgd.step({&a, &b}), std::invalid_argument);
}

TEST(Optimizer, SgdWeightDecayShrinksWeights) {
  Param w(1, 1);
  w.value.at(0, 0) = 1.0f;
  SgdOptimizer sgd(0.1f, 0.0f, 0.5f);
  sgd.step({&w});  // grad 0, decay pulls toward 0
  EXPECT_LT(w.value.at(0, 0), 1.0f);
}

}  // namespace
}  // namespace gcnt
