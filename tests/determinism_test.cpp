// Thread-count invariance: every parallel kernel must produce bitwise
// identical results for GCNT_THREADS=1 and GCNT_THREADS=8 (deterministic
// static partitioning preserves per-element accumulation order; see
// common/parallel.h).

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "gcn/graph_tensors.h"
#include "gcn/graphsage_inference.h"
#include "gcn/model.h"
#include "gcn/recursive_inference.h"
#include "gen/generator.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gcnt {
namespace {

/// ~5k-gate netlist shared by the kernel-level checks.
const Netlist& big_netlist() {
  static const Netlist netlist = [] {
    GeneratorConfig config;
    config.seed = 2024;
    config.target_gates = 5000;
    config.primary_inputs = 40;
    config.primary_outputs = 20;
    config.flip_flops = 64;
    return generate_circuit(config);
  }();
  return netlist;
}

Matrix random_dense(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

/// Runs `fn` once per thread count and checks all results are identical.
template <typename Fn>
void expect_thread_invariant(Fn&& fn) {
  set_kernel_threads(1);
  const auto reference = fn();
  set_kernel_threads(8);
  const auto parallel = fn();
  set_kernel_threads(0);
  EXPECT_EQ(reference, parallel);
}

TEST(Determinism, SpmmThreadCountInvariant) {
  const GraphTensors tensors = build_graph_tensors(big_netlist());
  const Matrix x = random_dense(tensors.pred.cols(), 64, 7);
  expect_thread_invariant([&] {
    Matrix out;
    tensors.pred.spmm(x, out);
    return out;
  });
  // beta != 0 accumulation path.
  expect_thread_invariant([&] {
    Matrix out = random_dense(tensors.pred.rows(), 64, 8);
    tensors.pred.spmm(x, out, 0.5f, 2.0f);
    return out;
  });
}

TEST(Determinism, CsrBuildAndTransposeThreadCountInvariant) {
  const GraphTensors tensors = build_graph_tensors(big_netlist());
  expect_thread_invariant([&] {
    const CsrMatrix csr = CsrMatrix::from_coo(tensors.pred_coo);
    const CsrMatrix t = csr.transpose();
    return std::make_tuple(csr.row_ptr(), csr.col_index(), csr.values(),
                           t.row_ptr(), t.col_index(), t.values());
  });
}

TEST(Determinism, GemmThreadCountInvariant) {
  const Matrix a = random_dense(300, 200, 11);
  const Matrix b = random_dense(200, 150, 13);
  const Matrix at = random_dense(200, 300, 17);
  const Matrix bt = random_dense(150, 200, 19);
  expect_thread_invariant([&] {
    Matrix nn, tn, nt, tt;
    gemm(a, b, nn, false, false);
    gemm(at, b, tn, true, false);
    gemm(a, bt, nt, false, true);
    gemm(at, bt, tt, true, true);
    return std::make_tuple(std::move(nn), std::move(tn), std::move(nt),
                           std::move(tt));
  });
}

TEST(Determinism, ModelInferenceThreadCountInvariant) {
  GraphTensors tensors = build_graph_tensors(big_netlist());
  tensors.standardize_features();
  GcnConfig config;
  config.seed = 99;
  const GcnModel model(config);
  expect_thread_invariant([&] { return model.infer(tensors); });
}

TEST(Determinism, FaultSimThreadCountInvariant) {
  const Netlist& netlist = big_netlist();
  LogicSimulator sim(netlist);
  const auto faults = sample_faults(netlist, 2000, 3);
  expect_thread_invariant([&] {
    ParallelFaultSimulator fsim(sim);
    Rng rng(31);
    std::vector<bool> detected(faults.size(), false);
    std::vector<std::uint64_t> words;
    std::vector<std::size_t> newly;
    std::vector<std::vector<std::uint64_t>> all_words;
    for (int trial = 0; trial < 4; ++trial) {
      const PatternBatch batch = sim.random_batch(rng);
      newly.push_back(fsim.run_batch(batch, faults, detected, words));
      all_words.push_back(words);
    }
    return std::make_tuple(std::move(newly), std::move(all_words), detected);
  });
}

TEST(Determinism, RecursiveInferAllThreadCountInvariant) {
  // Small circuit: the recursion is exponential in depth.
  GeneratorConfig config;
  config.seed = 7;
  config.target_gates = 200;
  const Netlist netlist = generate_circuit(config);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnConfig model_config;
  model_config.depth = 2;
  model_config.embed_dims = {8, 16};
  model_config.fc_dims = {16};
  const GcnModel model(model_config);
  const RecursiveInference engine(model, netlist, tensors.features);
  expect_thread_invariant([&] { return engine.infer_all(); });
}

TEST(Determinism, GraphSageInferAllThreadCountInvariant) {
  GeneratorConfig config;
  config.seed = 8;
  config.target_gates = 150;
  const Netlist netlist = generate_circuit(config);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnConfig model_config;
  model_config.depth = 2;
  model_config.embed_dims = {8, 16};
  model_config.fc_dims = {16};
  const GcnModel model(model_config);
  SampleFanouts fanouts;
  fanouts.per_hop = {4, 3};
  // Per-node sampling streams are derived from (seed, node), so infer_all
  // is reproducible across runs AND thread counts.
  expect_thread_invariant([&] {
    GraphSageInference engine(model, netlist, tensors.features, fanouts,
                              /*seed=*/42);
    return engine.infer_all();
  });
}

}  // namespace
}  // namespace gcnt
