// Model persistence round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "gcn/serialize.h"
#include "gen/generator.h"

namespace gcnt {
namespace {

GcnConfig small_config() {
  GcnConfig config;
  config.depth = 2;
  config.embed_dims = {8, 12};
  config.fc_dims = {10};
  config.seed = 31;
  return config;
}

TEST(Serialize, RoundTripPreservesOutputs) {
  GeneratorConfig gen;
  gen.seed = 3;
  gen.target_gates = 120;
  const Netlist netlist = generate_circuit(gen);
  const GraphTensors tensors = build_graph_tensors(netlist);

  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  GcnModel loaded = load_model(buffer);

  const Matrix a = model.infer(tensors);
  const Matrix b = loaded.infer(tensors);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Serialize, ConfigRestored) {
  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  const GcnModel loaded = load_model(buffer);
  EXPECT_EQ(loaded.config().depth, 2);
  EXPECT_EQ(loaded.config().embed_dims, (std::vector<std::size_t>{8, 12}));
  EXPECT_EQ(loaded.config().fc_dims, (std::vector<std::size_t>{10}));
  EXPECT_EQ(loaded.config().num_classes, 2u);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer("not-a-model v1\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedThrows) {
  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(Serialize, VersionMismatchThrows) {
  std::stringstream buffer("gcnt-model v9\ndepth 1\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  GcnModel model(small_config());
  const std::string path = "serialize_test_model.txt";
  save_model_file(model, path);
  const GcnModel loaded = load_model_file(path);
  EXPECT_EQ(loaded.config().depth, model.config().depth);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/path/model.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace gcnt
