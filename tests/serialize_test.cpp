// Model persistence round-trips and hostile-input hardening.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "gcn/serialize.h"
#include "gen/generator.h"

namespace gcnt {
namespace {

GcnConfig small_config() {
  GcnConfig config;
  config.depth = 2;
  config.embed_dims = {8, 12};
  config.fc_dims = {10};
  config.seed = 31;
  return config;
}

TEST(Serialize, RoundTripPreservesOutputs) {
  GeneratorConfig gen;
  gen.seed = 3;
  gen.target_gates = 120;
  const Netlist netlist = generate_circuit(gen);
  const GraphTensors tensors = build_graph_tensors(netlist);

  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  GcnModel loaded = load_model(buffer);

  const Matrix a = model.infer(tensors);
  const Matrix b = loaded.infer(tensors);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Serialize, ConfigRestored) {
  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  const GcnModel loaded = load_model(buffer);
  EXPECT_EQ(loaded.config().depth, 2);
  EXPECT_EQ(loaded.config().embed_dims, (std::vector<std::size_t>{8, 12}));
  EXPECT_EQ(loaded.config().fc_dims, (std::vector<std::size_t>{10}));
  EXPECT_EQ(loaded.config().num_classes, 2u);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer("not-a-model v1\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedThrows) {
  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(Serialize, VersionMismatchThrows) {
  std::stringstream buffer("gcnt-model v9\ndepth 1\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  GcnModel model(small_config());
  const std::string path = "serialize_test_model.txt";
  save_model_file(model, path);
  const GcnModel loaded = load_model_file(path);
  EXPECT_EQ(loaded.config().depth, model.config().depth);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/path/model.txt"),
               std::runtime_error);
}

TEST(Serialize, MissingFileIsIoError) {
  try {
    load_model_file("/nonexistent/path/model.txt");
    FAIL() << "expected gcnt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST(Serialize, VersionMismatchIsVersionError) {
  std::stringstream buffer("gcnt-model v9\ndepth 1\n");
  try {
    load_model(buffer);
    FAIL() << "expected gcnt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kVersion);
  }
}

/// Builds a syntactically valid header around hostile architecture
/// fields; every case must be rejected as kCorrupt *before* any model
/// allocation happens.
std::string hostile_header(const std::string& depth,
                           const std::string& embed_dims,
                           const std::string& fc_dims,
                           const std::string& num_classes) {
  return "gcnt-model v1\ndepth " + depth + "\nembed_dims " + embed_dims +
         "\nfc_dims " + fc_dims + "\nnum_classes " + num_classes +
         "\naggregation 0 0 0.5 0.5\n";
}

void expect_corrupt(const std::string& text) {
  std::istringstream in(text);
  try {
    load_model(in);
    FAIL() << "expected gcnt::Error for: " << text.substr(0, 80);
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  }
}

TEST(Serialize, HostileHeaderHugeDimensionRejected) {
  expect_corrupt(hostile_header("1", "999999999", "10", "2"));
}

TEST(Serialize, HostileHeaderZeroDimensionRejected) {
  expect_corrupt(hostile_header("1", "0", "10", "2"));
}

TEST(Serialize, HostileHeaderDepthBoundRejected) {
  std::string dims;
  for (int i = 0; i < 65; ++i) dims += "8 ";
  expect_corrupt(hostile_header("65", dims, "10", "2"));
}

TEST(Serialize, HostileHeaderLayerCountRejected) {
  std::string dims;
  for (int i = 0; i < 80; ++i) dims += "8 ";
  expect_corrupt(hostile_header("2", "8 8", dims, "2"));
}

TEST(Serialize, HostileHeaderClassCountRejected) {
  expect_corrupt(hostile_header("1", "8", "10", "99999"));
}

TEST(Serialize, HostileHeaderTotalParamCapRejected) {
  // Each dimension is individually legal (<= 16384) but the product
  // blows the total-parameter budget; the cap must catch it from the
  // header alone.
  expect_corrupt(hostile_header("2", "16384 16384", "16384", "2"));
}

TEST(Serialize, NonFiniteWeightRejected) {
  GcnModel model(small_config());
  std::stringstream buffer;
  save_model(model, buffer);
  std::string text = buffer.str();
  // Corrupt the first weight of the first param block.
  const std::size_t block = text.find("param ");
  ASSERT_NE(block, std::string::npos);
  const std::size_t value = text.find('\n', block) + 1;
  const std::size_t end = text.find(' ', value);
  text.replace(value, end - value, "inf");
  expect_corrupt(text);
}

TEST(Serialize, LegacyBareFileStillLoads) {
  // Pre-envelope files are bare save_model text; the loader must keep
  // reading them without the artifact header.
  GcnModel model(small_config());
  const std::string path = "serialize_test_legacy.txt";
  {
    std::ofstream out(path);
    save_model(model, out);
  }
  const GcnModel loaded = load_model_file(path);
  EXPECT_EQ(loaded.config().depth, model.config().depth);
  std::remove(path.c_str());
}

TEST(Serialize, SavedFileIsEnveloped) {
  GcnModel model(small_config());
  const std::string path = "serialize_test_envelope.txt";
  save_model_file(model, path);
  std::ifstream in(path);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "gcnt-artifact");
  std::remove(path.c_str());
}

TEST(Serialize, TamperedFileRejectedAsCorrupt) {
  GcnModel model(small_config());
  const std::string path = "serialize_test_tampered.txt";
  save_model_file(model, path);
  {
    std::fstream file(path, std::ios::in | std::ios::out);
    file.seekp(-10, std::ios::end);
    file.put('#');
  }
  try {
    load_model_file(path);
    FAIL() << "expected gcnt::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcnt
