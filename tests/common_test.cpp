// Utilities: RNG, thread pool, tables, metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace gcnt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
  double mean = 0.0;
  for (int i = 0; i < 20000; ++i) mean += rng.uniform();
  EXPECT_NEAR(mean / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto x = rng.below(7);
    ASSERT_LT(x, 7u);
    ++counts[x];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(15);
  const auto sample = rng.sample_indices(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::vector<bool> seen(100, false);
  for (std::size_t i : sample) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  Rng rng(15);
  EXPECT_EQ(rng.sample_indices(5, 10).size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng rng(19);
  Rng child = rng.split();
  EXPECT_NE(rng(), child());
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter++; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed call.
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelBlocksPartitionsExactly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> blocks_seen{0};
  pool.parallel_blocks(100, 3,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         blocks_seen++;
                         for (std::size_t i = begin; i < end; ++i) hits[i]++;
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(blocks_seen.load(), 3);
}

TEST(ThreadPool, ParallelBlocksMoreBlocksThanWork) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_blocks(3, 8,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         total += static_cast<int>(end - begin);
                       });
  EXPECT_EQ(total.load(), 3);
}

TEST(KernelPool, OverrideControlsThreadCount) {
  set_kernel_threads(3);
  EXPECT_EQ(kernel_threads(), 3u);
  EXPECT_EQ(kernel_pool().worker_count(), 3u);
  set_kernel_threads(0);
  EXPECT_GE(kernel_threads(), 1u);
}

TEST(KernelPool, PlanCollapsesBelowMinParallel) {
  set_kernel_threads(4);
  EXPECT_EQ(plan_blocks(10, 100).count, 1u);
  const BlockPlan plan = plan_blocks(1000, 100);
  EXPECT_EQ(plan.count, 4u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(plan.count - 1), 1000u);
  set_kernel_threads(0);
}

TEST(KernelPool, ParallelBlocksCoversAndPropagates) {
  set_kernel_threads(4);
  std::vector<std::atomic<int>> hits(512);
  parallel_blocks(512, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_THROW(
      parallel_blocks(512, 1,
                      [](std::size_t begin, std::size_t) {
                        if (begin == 0) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  set_kernel_threads(0);
}

TEST(KernelPool, NestedKernelRunsInline) {
  set_kernel_threads(4);
  std::atomic<int> inner_total{0};
  // A kernel body issuing another kernel must not re-enter the pool (the
  // nested plan collapses to one inline block) — this would otherwise be
  // able to deadlock a saturated pool.
  parallel_blocks(256, 1, [&](std::size_t begin, std::size_t end) {
    parallel_blocks(end - begin, 1, [&](std::size_t b, std::size_t e) {
      inner_total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(inner_total.load(), 256);
  set_kernel_threads(0);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t("Demo", {"Design", "Value"});
  t.add_row({"B1", "1.23"});
  t.add_row({"LongDesignName", "4"});
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("LongDesignName"), std::string::npos);
  EXPECT_NE(s.find("| B1"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("Demo", {"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsPadded) {
  Table t("Demo", {"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row(0).size(), 3u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::percent(0.9931), "99.31%");
}

TEST(Metrics, PerfectPredictions) {
  const std::vector<std::int32_t> labels{0, 1, 0, 1};
  const auto cm = evaluate_binary(labels, labels);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

TEST(Metrics, KnownConfusion) {
  const std::vector<std::int32_t> predictions{1, 1, 0, 0, 1};
  const std::vector<std::int32_t> labels{1, 0, 0, 1, 1};
  const auto cm = evaluate_binary(predictions, labels);
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_NEAR(cm.precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.recall(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, RowSubset) {
  const std::vector<std::int32_t> predictions{1, 0, 1};
  const std::vector<std::int32_t> labels{1, 1, 0};
  const std::vector<std::uint32_t> rows{0};
  const auto cm = evaluate_binary(predictions, labels, &rows);
  EXPECT_EQ(cm.total(), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(Metrics, DegenerateEmpty) {
  const auto cm = evaluate_binary({}, {});
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Metrics, DegenerateAllNegativePredictionsReturnZeroNotNan) {
  // No predicted positives: precision's denominator is zero; with positives
  // in the labels, recall is a true 0; f1 must then be 0, never NaN.
  const std::vector<std::int32_t> predictions{0, 0, 0, 0};
  const std::vector<std::int32_t> labels{1, 0, 1, 0};
  const auto cm = evaluate_binary(predictions, labels);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
  EXPECT_FALSE(std::isnan(cm.precision()));
  EXPECT_FALSE(std::isnan(cm.f1()));
}

TEST(Metrics, DegenerateNoActualPositives) {
  // All-negative labels and predictions: recall's denominator is zero.
  const std::vector<std::int32_t> predictions{0, 0, 0};
  const std::vector<std::int32_t> labels{0, 0, 0};
  const auto cm = evaluate_binary(predictions, labels);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("none", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4", LogLevel::kWarn), LogLevel::kOff);
  // Garbage, empty, and null all fall back.
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kInfo), LogLevel::kInfo);
}

TEST(Log, ConcurrentLinesNeverShear) {
  const LogLevel saved = log_level();
  log_level() = LogLevel::kInfo;
  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  {
    ThreadPool pool(8);
    pool.parallel_for(400, [](std::size_t i) {
      log_info("msg-", i, "-payload");
    });
  }
  std::cerr.rdbuf(old_buf);
  log_level() = saved;

  // Every captured line must be a whole "[INFO ] msg-<i>-payload" record;
  // interleaved writes would split or merge lines.
  std::istringstream lines(captured.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[INFO ] msg-", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 8), "-payload") << line;
    ++count;
  }
  EXPECT_EQ(count, 400u);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace gcnt
