// Control point insertion: netlist surgery semantics, testability effect,
// and the baseline CPI flow.

#include <gtest/gtest.h>

#include "atpg/atpg.h"
#include "cop/cop.h"
#include "data/labeler.h"
#include "dft/cpi.h"
#include "dft/gcn_cpi.h"
#include "gcn/trainer.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"
#include "sim/logic_sim.h"

namespace gcnt {
namespace {

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

/// Wide AND: g is almost never 1 under random patterns.
Netlist rare_one_circuit() {
  return read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g = AND(a, b, c, d)
y = BUF(g)
)");
}

TEST(Netlist, RetargetFanoutsMovesConsumers) {
  Netlist n = read_bench_string(R"(
INPUT(a)
OUTPUT(x)
OUTPUT(y)
p = BUF(a)
x = NOT(p)
y = BUF(p)
)");
  const NodeId p = by_name(n, "p");
  const NodeId a = by_name(n, "a");
  const NodeId q = n.add_node(CellType::kBuf, "q");
  n.connect(a, q);
  const std::size_t edges_before = n.edge_count();
  n.retarget_fanouts(p, q);
  EXPECT_EQ(n.edge_count(), edges_before);
  EXPECT_TRUE(n.fanouts(p).empty());
  EXPECT_EQ(n.fanouts(q).size(), 2u);  // x and y re-driven
  EXPECT_TRUE(n.validate().empty());
}

TEST(Netlist, RetargetRespectsExcept) {
  Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\np = BUF(a)\nx = NOT(p)\ny = BUF(p)\n");
  const NodeId p = by_name(n, "p");
  const NodeId x = by_name(n, "x");
  const NodeId q = n.add_node(CellType::kBuf, "q");
  n.connect(by_name(n, "a"), q);
  n.retarget_fanouts(p, q, x);
  EXPECT_EQ(n.fanouts(p), std::vector<NodeId>{x});
}

TEST(ControlPoint, InactiveControlPreservesBehavior) {
  const Netlist original = rare_one_circuit();
  Netlist modified = original;
  const NodeId g = by_name(modified, "g");
  const auto cp = modified.insert_control_point(g, true);
  ASSERT_TRUE(modified.validate().empty());

  LogicSimulator sim_a(original);
  LogicSimulator sim_b(modified);
  Rng rng(5);
  const PatternBatch batch_a = sim_a.random_batch(rng);
  // Same stimulus, control input forced inactive (0).
  PatternBatch batch_b(sim_b.sources().size(), 0);
  for (std::size_t i = 0; i < batch_a.size(); ++i) batch_b[i] = batch_a[i];
  for (std::size_t i = 0; i < sim_b.sources().size(); ++i) {
    if (sim_b.sources()[i] == cp.control) batch_b[i] = 0;
  }
  std::vector<std::uint64_t> va, vb;
  sim_a.simulate(batch_a, va);
  sim_b.simulate(batch_b, vb);
  const NodeId po_a = original.primary_outputs()[0];
  const NodeId po_b = modified.primary_outputs()[0];
  EXPECT_EQ(va[original.fanins(po_a).front()], vb[modified.fanins(po_b).front()]);
}

TEST(ControlPoint, ActiveControlForcesValue) {
  Netlist n = rare_one_circuit();
  const NodeId g = by_name(n, "g");
  const auto cp = n.insert_control_point(g, true);

  LogicSimulator sim(n);
  PatternBatch batch(sim.sources().size(), 0);  // all inputs 0, g would be 0
  for (std::size_t i = 0; i < sim.sources().size(); ++i) {
    if (sim.sources()[i] == cp.control) batch[i] = ~0ULL;  // assert CP
  }
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  EXPECT_EQ(values[cp.gate], ~0ULL);  // forced to 1 despite g == 0
}

TEST(ControlPoint, ControlZeroVariant) {
  Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = OR(a, b)\ny = BUF(g)\n");
  const NodeId g = by_name(n, "g");
  const auto cp = n.insert_control_point(g, false);
  ASSERT_NE(cp.inverter, kInvalidNode);
  ASSERT_TRUE(n.validate().empty());

  LogicSimulator sim(n);
  PatternBatch batch(sim.sources().size(), ~0ULL);  // a=b=1, g=1
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  EXPECT_EQ(values[cp.gate], 0ULL);  // cp asserted forces 0

  for (std::size_t i = 0; i < sim.sources().size(); ++i) {
    if (sim.sources()[i] == cp.control) batch[i] = 0;  // inactive
  }
  sim.simulate(batch, values);
  EXPECT_EQ(values[cp.gate], ~0ULL);  // transparent again
}

TEST(ControlPoint, ImprovesControllabilityMeasures) {
  Netlist n = rare_one_circuit();
  const NodeId g = by_name(n, "g");
  const auto cop_before = compute_cop(n);
  const auto scoap_before = compute_scoap(n);
  const auto cp = n.insert_control_point(g, true);
  const auto cop_after = compute_cop(n);
  const auto scoap_after = compute_scoap(n);
  // The controlled net (cp.gate now feeds g's old consumers).
  EXPECT_GT(cop_after.prob_one[cp.gate], cop_before.prob_one[g]);
  EXPECT_LT(scoap_after.cc1[cp.gate], scoap_before.cc1[g] );
}

TEST(Labeler, DifficultToControlFlagsRareSignals) {
  const Netlist n = rare_one_circuit();
  const auto cop = compute_cop(n);
  const auto labels = label_difficult_to_control(n, cop, 0.1);
  EXPECT_EQ(labels[by_name(n, "g")], 1);  // p1 = 1/16
  for (NodeId v : n.primary_inputs()) EXPECT_EQ(labels[v], 0);
}

TEST(BaselineCpi, ClearsBelowThresholdSignals) {
  GeneratorConfig config;
  config.seed = 814;
  config.target_gates = 800;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.trap_fraction = 0.05;  // enable trees are low-probability signals
  config.trap_enable_width = 10;
  Netlist n = generate_circuit(config);

  CpiOptions options;
  options.probability_threshold = 0.02;
  const auto result = run_baseline_cpi(n, options);
  EXPECT_GT(result.inserted.size(), 0u);
  EXPECT_EQ(result.remaining_below_threshold, 0u);
  EXPECT_TRUE(n.validate().empty());
}

TEST(BaselineCpi, ImprovesRandomPatternCoverage) {
  GeneratorConfig config;
  config.seed = 815;
  config.target_gates = 500;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.trap_fraction = 0.08;
  config.trap_enable_width = 12;
  Netlist n = generate_circuit(config);

  AtpgOptions atpg;
  atpg.deterministic_topoff = false;  // isolate random-pattern testability
  atpg.max_random_batches = 16;
  const auto before = run_atpg(n, atpg);
  run_baseline_cpi(n, CpiOptions{});
  const auto after = run_atpg(n, atpg);
  EXPECT_GT(after.fault_coverage(), before.fault_coverage());
}

TEST(GcnCpi, FlowReducesPositivesWithTrainedModel) {
  // Build a design with controllability traps, train a small GCN on
  // difficult-to-control labels, and let the flow insert CPs.
  GeneratorConfig config;
  config.seed = 911;
  config.target_gates = 900;
  config.primary_inputs = 20;
  config.primary_outputs = 10;
  config.flip_flops = 36;
  config.trap_fraction = 0.05;
  config.trap_enable_width = 10;
  Netlist netlist = generate_circuit(config);

  GraphTensors tensors = build_graph_tensors(netlist);
  const auto cop = compute_cop(netlist);
  tensors.labels = label_difficult_to_control(netlist, cop, 0.02);
  std::size_t positives = 0;
  for (auto l : tensors.labels) positives += l;
  ASSERT_GT(positives, 10u);

  GcnConfig model_config;
  model_config.depth = 2;
  model_config.embed_dims = {8, 16};
  model_config.fc_dims = {16};
  model_config.seed = 5150;
  GcnModel model(model_config);
  TrainerOptions options;
  options.epochs = 120;
  options.learning_rate = 1e-2f;
  options.positive_class_weight = 6.0f;
  options.eval_interval = options.epochs;
  Trainer trainer(model, options);
  const TrainGraph data{&tensors, {}};
  trainer.train({data}, nullptr);

  const std::size_t before_positives = [&] {
    std::size_t count = 0;
    const auto prob = model.predict_positive_probability(tensors);
    for (float p : prob) count += p >= 0.5f ? 1 : 0;
    return count;
  }();
  ASSERT_GT(before_positives, 0u);

  GcnCpiOptions cpi_options;
  cpi_options.max_iterations = 6;
  const auto result = run_gcn_cpi(netlist, {&model}, cpi_options);
  EXPECT_GT(result.inserted.size(), 0u);
  EXPECT_LT(result.final_positive_predictions, before_positives);
  EXPECT_TRUE(netlist.validate().empty());

  // Controllability of the controlled nets genuinely improved.
  const auto cop_after = compute_cop(netlist);
  std::size_t improved = 0;
  for (const auto& cp : result.inserted) {
    const double p1 = cop_after.prob_one[cp.gate];
    if (std::min(p1, 1.0 - p1) > 0.02) ++improved;
  }
  EXPECT_GT(improved, result.inserted.size() / 2);
}

}  // namespace
}  // namespace gcnt
