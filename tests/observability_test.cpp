// Observability layer: stats registry (counters/gauges/histograms),
// trace spans + Chrome trace-event export, and their interaction with the
// kernel pool.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <map>

#include "common/json.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gcnt {
namespace {

/// Enables stats for one scope and restores the previous state after.
struct StatsEnabledScope {
  explicit StatsEnabledScope(bool on = true) : was_(stats_enabled()) {
    set_stats_enabled(on);
  }
  ~StatsEnabledScope() { set_stats_enabled(was_); }
  bool was_;
};

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index((1ull << 38)), 39u);
  // Values past the last boundary clamp into the final bucket.
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBucketCount - 1);

  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Histogram::bucket_lower_bound(3), 4u);
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    // Lower bound of bucket i is the first value that maps to it.
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(i + 1) - 1),
              i);
  }
}

TEST(Histogram, RecordMinMaxSumReset) {
  StatsEnabledScope stats_on;
  Histogram h;
  EXPECT_EQ(h.min(), 0u);  // empty convention
  h.record(5);
  h.record(0);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(0), 1u);                            // the zero
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(5)), 1u);   // 5
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(100)), 1u); // 100
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, DisabledRecordIsIgnored) {
  StatsEnabledScope stats_off(false);
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Counter, AddResetAndOverflowWrap) {
  StatsEnabledScope stats_on;
  Counter c;
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // Documented convention: wraps modulo 2^64.
  c.add(~std::uint64_t{0});
  EXPECT_EQ(c.value(), 9u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  set_stats_enabled(false);
  c.add(5);
  EXPECT_EQ(c.value(), 0u);  // gated off
}

TEST(StatsRegistry, StableReferencesAndSortedSnapshot) {
  StatsEnabledScope stats_on;
  StatsRegistry& registry = StatsRegistry::instance();
  Counter& a = registry.counter("test.zzz");
  Counter& b = registry.counter("test.aaa");
  EXPECT_EQ(&a, &registry.counter("test.zzz"));
  a.reset();
  b.reset();
  a.add(2);
  b.add(3);
  registry.gauge("test.gauge").set(-7);
  registry.histogram("test.hist").record(16);

  const StatsSnapshot snap = registry.snapshot();
  // Names are sorted, so "test.aaa" precedes "test.zzz".
  std::size_t index_aaa = snap.counters.size(), index_zzz = snap.counters.size();
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].first == "test.aaa") index_aaa = i;
    if (snap.counters[i].first == "test.zzz") index_zzz = i;
  }
  ASSERT_LT(index_aaa, snap.counters.size());
  ASSERT_LT(index_zzz, snap.counters.size());
  EXPECT_LT(index_aaa, index_zzz);
  EXPECT_EQ(snap.counters[index_aaa].second, 3u);
  EXPECT_EQ(snap.counters[index_zzz].second, 2u);

  bool saw_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.gauge") {
      saw_gauge = true;
      EXPECT_EQ(value, -7);
    }
  }
  EXPECT_TRUE(saw_gauge);

  std::ostringstream text;
  registry.write_text(text);
  EXPECT_NE(text.str().find("counter test.aaa 3"), std::string::npos);
  std::ostringstream json;
  registry.write_json(json);
  EXPECT_NE(json.str().find("\"test.aaa\": 3"), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter("test.aaa").value(), 0u);
  EXPECT_EQ(registry.histogram("test.hist").count(), 0u);
}

TEST(KernelStatsApi, CachedPairUpdatesRegistry) {
  StatsEnabledScope stats_on;
  KernelStats& stats = kernel_stats("unit_test_kernel");
  EXPECT_EQ(&stats, &kernel_stats("unit_test_kernel"));
  stats.calls.reset();
  {
    GCNT_KERNEL_SCOPE("unit_test_kernel");
  }
  EXPECT_EQ(StatsRegistry::instance()
                .counter("kernel.unit_test_kernel.calls")
                .value(),
            1u);
  EXPECT_GE(StatsRegistry::instance()
                .histogram("kernel.unit_test_kernel.ns")
                .count(),
            1u);
}

TEST(KernelStatsApi, DisabledScopeRecordsNothing) {
  StatsEnabledScope stats_off(false);
  KernelStats& stats = kernel_stats("unit_test_kernel_off");
  stats.calls.reset();
  {
    GCNT_KERNEL_SCOPE("unit_test_kernel_off");
  }
  EXPECT_EQ(stats.calls.value(), 0u);
}

TEST(Trace, ConcurrentSpansFromPoolWorkersProduceValidFile) {
  const std::string path = "observability_concurrent_trace.json";
  set_kernel_threads(8);
  trace_reset();
  trace_start();
  // 1024 indices, min_parallel 1 -> 8 blocks; the caller runs block 0 and
  // the pool workers run the other 7, so spans land on several threads.
  for (int round = 0; round < 4; ++round) {
    parallel_blocks(1024, 1, [](std::size_t begin, std::size_t end) {
      TraceSpan span("test.block");
      span.arg("size", static_cast<double>(end - begin));
      volatile std::size_t sink = 0;
      for (std::size_t i = begin; i < end; ++i) sink += i;
    });
  }
  ASSERT_TRUE(trace_stop(path));
  set_kernel_threads(0);

  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.span_count, 32u);
  EXPECT_GE(result.thread_count, 2u);
  bool saw_block = false, saw_pool_task = false;
  for (const std::string& name : result.names) {
    saw_block |= name == "test.block";
    saw_pool_task |= name == "pool.task";
  }
  EXPECT_TRUE(saw_block);
  EXPECT_TRUE(saw_pool_task);

  // Span args survive the round trip.
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"args\":{\"size\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, DisabledSpansRecordNothing) {
  const std::string path = "observability_disabled_trace.json";
  trace_reset();
  {
    TraceSpan span("test.should_not_appear");
    span.arg("x", 1.0);
  }
  ASSERT_TRUE(trace_stop(path));  // writes whatever was recorded: nothing
  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.span_count, 0u);
  std::remove(path.c_str());
}

TEST(Trace, ValidatorRejectsMalformedFiles) {
  EXPECT_FALSE(validate_trace_file("no_such_file_12345.json").ok);

  const std::string path = "observability_bad_trace.json";
  {
    std::ofstream out(path);
    out << "{\"traceEvents\":[{\"name\":\"x\"}]}";  // missing ph/pid/tid
  }
  EXPECT_FALSE(validate_trace_file(path).ok);
  {
    std::ofstream out(path);
    out << "not json at all";
  }
  EXPECT_FALSE(validate_trace_file(path).ok);
  {
    // Regressing completion times within one tid must be rejected.
    std::ofstream out(path);
    out << "{\"traceEvents\":["
           "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":100,"
           "\"dur\":50},"
           "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,"
           "\"dur\":5}]}";
  }
  EXPECT_FALSE(validate_trace_file(path).ok);
  std::remove(path.c_str());
}

TEST(Trace, RingBufferDropsOldestAndCounts) {
  trace_reset();
  trace_start();
  // Default ring capacity is 65536 per thread; push past it.
  for (int i = 0; i < 70000; ++i) {
    TraceSpan span("test.flood");
  }
  EXPECT_GT(trace_dropped_spans(), 0u);
  trace_reset();
  EXPECT_EQ(trace_dropped_spans(), 0u);
  const std::string path = "observability_flood_trace.json";
  ASSERT_TRUE(trace_stop(path));
  std::remove(path.c_str());
}

/// Counter values and histogram *counts* (sums are wall-clock-derived)
/// from two identical single-threaded runs must match exactly.
TEST(Stats, SnapshotDeterministicUnderSingleThreadPool) {
  StatsEnabledScope stats_on;
  set_kernel_threads(1);

  const auto run_workload = [] {
    StatsRegistry::instance().reset();
    CooMatrix coo(64, 64);
    for (std::uint32_t i = 0; i < 64; ++i) {
      coo.add(i, (i * 7 + 3) % 64, 1.0f);
      coo.add(i, i, 0.5f);
    }
    const CsrMatrix csr = CsrMatrix::from_coo(coo);
    Matrix dense(64, 8, 0.25f);
    Matrix out;
    for (int rep = 0; rep < 5; ++rep) csr.spmm(dense, out);
    return StatsRegistry::instance().snapshot();
  };

  const StatsSnapshot first = run_workload();
  const StatsSnapshot second = run_workload();

  ASSERT_EQ(first.counters.size(), second.counters.size());
  for (std::size_t i = 0; i < first.counters.size(); ++i) {
    EXPECT_EQ(first.counters[i].first, second.counters[i].first);
    EXPECT_EQ(first.counters[i].second, second.counters[i].second)
        << first.counters[i].first;
  }
  ASSERT_EQ(first.histograms.size(), second.histograms.size());
  for (std::size_t i = 0; i < first.histograms.size(); ++i) {
    EXPECT_EQ(first.histograms[i].name, second.histograms[i].name);
    EXPECT_EQ(first.histograms[i].count, second.histograms[i].count)
        << first.histograms[i].name;
  }
  EXPECT_EQ(StatsRegistry::instance()
                .counter("kernel.spmm.calls")
                .value(),
            5u);

  set_kernel_threads(0);
  StatsRegistry::instance().reset();
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  StatsSnapshot::HistogramValue hist;
  EXPECT_EQ(histogram_quantile(hist, 0.5), 0.0);
  EXPECT_EQ(histogram_quantile(hist, 0.99), 0.0);
}

TEST(HistogramQuantile, SingleSampleIsExact) {
  // One sample of 100 lands in bucket [64, 128); interpolation would
  // estimate 96, but the clamp to [min, max] recovers the exact value.
  StatsSnapshot::HistogramValue hist;
  hist.count = 1;
  hist.sum = 100;
  hist.min = 100;
  hist.max = 100;
  hist.buckets = {{64, 1}};
  EXPECT_EQ(histogram_quantile(hist, 0.0), 100.0);
  EXPECT_EQ(histogram_quantile(hist, 0.5), 100.0);
  EXPECT_EQ(histogram_quantile(hist, 1.0), 100.0);
}

TEST(HistogramQuantile, ZeroBucketReportsZero) {
  StatsSnapshot::HistogramValue hist;
  hist.count = 4;
  hist.min = 0;
  hist.max = 0;
  hist.buckets = {{0, 4}};
  EXPECT_EQ(histogram_quantile(hist, 0.99), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinBucketBoundaries) {
  // 10 samples uniform in bucket [8, 16), with true min/max wider than
  // any interpolated value so the clamp never bites.
  StatsSnapshot::HistogramValue hist;
  hist.count = 10;
  hist.min = 8;
  hist.max = 15;
  hist.buckets = {{8, 10}};
  // q=0.5 -> target 5 of 10 -> fraction 0.5 -> 8 * 1.5 = 12.
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 0.5), 12.0);
  // q=0 -> fraction 0 -> the bucket's lower bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 0.0), 8.0);
  // q=1 -> fraction 1 -> the bucket's upper bound, clamped to max.
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 1.0), 15.0);
}

TEST(HistogramQuantile, SpansMultipleBuckets) {
  StatsSnapshot::HistogramValue hist;
  hist.count = 8;
  hist.min = 1;
  hist.max = 30;
  hist.buckets = {{1, 2}, {4, 4}, {16, 2}};
  // q=0.25 -> target 2: first bucket exactly -> 1 * (1 + 2/2) = 2.
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 0.25), 2.0);
  // q=0.75 -> target 6: 4 of the middle bucket's 4 -> 4 * (1 + 1) = 8.
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 0.75), 8.0);
  // q=1 -> last bucket upper bound 32, clamped to the recorded max 30.
  EXPECT_DOUBLE_EQ(histogram_quantile(hist, 1.0), 30.0);
}

TEST(HistogramQuantile, OverflowBucketNeverExtrapolatesPastMax) {
  // Everything in the final (clamp) bucket: the estimate must stay at
  // the recorded max, not the bucket's notional upper bound.
  StatsSnapshot::HistogramValue hist;
  hist.count = 3;
  hist.min = Histogram::bucket_lower_bound(Histogram::kBucketCount - 1);
  hist.max = hist.min + 12345;
  hist.buckets = {{hist.min, 3}};
  EXPECT_LE(histogram_quantile(hist, 0.99), static_cast<double>(hist.max));
  EXPECT_GE(histogram_quantile(hist, 0.01), static_cast<double>(hist.min));
}

TEST(StatsSnapshotDelta, CountersAndHistogramsDiff) {
  StatsSnapshot prev;
  prev.counters = {{"a", 10}, {"b", 5}};
  StatsSnapshot::HistogramValue ph;
  ph.name = "h";
  ph.count = 3;
  ph.sum = 30;
  ph.min = 8;
  ph.max = 12;
  ph.buckets = {{8, 3}};
  prev.histograms = {ph};

  StatsSnapshot cur;
  cur.counters = {{"a", 25}, {"b", 5}, {"c", 7}};  // c is new
  cur.gauges = {{"g", -3}};
  StatsSnapshot::HistogramValue ch = ph;
  ch.count = 5;
  ch.sum = 90;
  ch.max = 40;
  ch.buckets = {{8, 3}, {32, 2}};
  cur.histograms = {ch};

  const StatsSnapshot delta = snapshot_delta(prev, cur);
  const std::map<std::string, std::uint64_t> counters(delta.counters.begin(),
                                                      delta.counters.end());
  EXPECT_EQ(counters.at("a"), 15u);
  EXPECT_EQ(counters.at("b"), 0u);
  EXPECT_EQ(counters.at("c"), 7u);  // no prev -> full value
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].second, -3);  // gauges pass through

  ASSERT_EQ(delta.histograms.size(), 1u);
  const auto& wh = delta.histograms[0];
  EXPECT_EQ(wh.count, 2u);
  EXPECT_EQ(wh.sum, 60u);
  // Only the changed bucket survives; min/max copy the cumulative range.
  ASSERT_EQ(wh.buckets.size(), 1u);
  EXPECT_EQ(wh.buckets[0].first, 32u);
  EXPECT_EQ(wh.buckets[0].second, 2u);
  EXPECT_EQ(wh.min, 8u);
  EXPECT_EQ(wh.max, 40u);
}

TEST(Prometheus, ExpositionRoundTripsWithDeltas) {
  StatsSnapshot prev;
  prev.counters = {{"serve.requests", 100}};
  StatsSnapshot cur;
  cur.counters = {{"serve.requests", 140}};
  cur.gauges = {{"serve.queue_depth", 3}};
  StatsSnapshot::HistogramValue h;
  h.name = "serve.request_ns";
  h.count = 10;
  h.sum = 120;
  h.min = 8;
  h.max = 15;
  h.buckets = {{8, 10}};
  cur.histograms = {h};

  std::ostringstream out;
  write_prometheus(out, cur, &prev);
  std::map<std::string, double> series;
  std::string error;
  ASSERT_TRUE(parse_prometheus_text(out.str(), series, error)) << error;
  EXPECT_EQ(series.at("gcnt_serve_requests_total"), 140.0);
  EXPECT_EQ(series.at("gcnt_serve_requests_delta"), 40.0);
  EXPECT_EQ(series.at("gcnt_serve_queue_depth"), 3.0);
  EXPECT_EQ(series.at("gcnt_serve_request_ns_count"), 10.0);
  EXPECT_EQ(series.at("gcnt_serve_request_ns_sum"), 120.0);
  EXPECT_DOUBLE_EQ(series.at("gcnt_serve_request_ns{quantile=\"0.5\"}"),
                   12.0);
  EXPECT_DOUBLE_EQ(series.at("gcnt_serve_request_ns{quantile=\"0.99\"}"),
                   15.0);

  // Without a previous scrape there are no _delta / _window series.
  std::ostringstream first;
  write_prometheus(first, cur, nullptr);
  EXPECT_EQ(first.str().find("_delta"), std::string::npos);
  EXPECT_EQ(first.str().find("_window"), std::string::npos);

  // Hostile stat names are mangled into legal metric names.
  StatsSnapshot hostile;
  hostile.counters = {{"bad name\"with{stuff}", 1}};
  std::ostringstream mangled;
  write_prometheus(mangled, hostile, nullptr);
  std::map<std::string, double> mangled_series;
  ASSERT_TRUE(parse_prometheus_text(mangled.str(), mangled_series, error))
      << error;
  EXPECT_EQ(mangled_series.count("gcnt_bad_name_with_stuff__total"), 1u);
}

TEST(Prometheus, ParserRejectsGarbage) {
  std::map<std::string, double> series;
  std::string error;
  EXPECT_FALSE(parse_prometheus_text("metric_without_value\n", series, error));
  EXPECT_FALSE(parse_prometheus_text("metric not_a_number\n", series, error));
  EXPECT_FALSE(parse_prometheus_text("9starts_with_digit 1\n", series, error));
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_prometheus_text("# TYPE x counter\n\nx_total 4\n", series,
                                    error))
      << error;
  EXPECT_EQ(series.at("x_total"), 4.0);
}

TEST(StatsRegistry, WriteJsonEscapesHostileNames) {
  StatsEnabledScope stats_on;
  StatsRegistry& registry = StatsRegistry::instance();
  const std::string hostile = "test.evil\"name\\with\nnewline";
  registry.counter(hostile).add(2);
  std::ostringstream out;
  registry.write_json(out);
  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(out.str(), parsed, error))
      << error << "\n" << out.str();
  const json::Value* counters = parsed.find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* value = counters->find(hostile);
  ASSERT_NE(value, nullptr) << "hostile name lost in round trip";
  EXPECT_EQ(value->number, 2.0);
  registry.reset();
}

// ---------------------------------------------------------------------------
// Request-scoped span trees ("rid" args) in trace validation.

void write_trace(const std::string& path, const std::string& events) {
  std::ofstream out(path);
  out << "{\"traceEvents\":[" << events << "]}";
}

std::string span_json(const char* name, double ts, double dur, int rid) {
  std::ostringstream out;
  out << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":7,"
      << "\"ts\":" << ts << ",\"dur\":" << dur << ",\"args\":{\"rid\":" << rid
      << "}}";
  return out.str();
}

TEST(TraceRequestTrees, ConnectedTreeValidates) {
  const std::string path = "observability_rid_ok.json";
  // queue_wait completes at the root's start; children nest inside the
  // root; per-tid completion times are non-decreasing in file order.
  write_trace(path, span_json("serve.queue_wait", 90, 10, 5) + "," +
                        span_json("serve.forward", 110, 40, 5) + "," +
                        span_json("serve.request", 100, 100, 5));
  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.request_tree_count, 1u);
  std::remove(path.c_str());
}

TEST(TraceRequestTrees, CrossThreadHandOffValidates) {
  const std::string path = "observability_rid_threads.json";
  // The reader records queue_wait on tid 3; the worker records the rest
  // on tid 7 — the tree is still connected by rid.
  std::ostringstream reader_span;
  reader_span << "{\"name\":\"serve.queue_wait\",\"ph\":\"X\",\"pid\":1,"
              << "\"tid\":3,\"ts\":90,\"dur\":10,\"args\":{\"rid\":5}}";
  write_trace(path, reader_span.str() + "," +
                        span_json("serve.decode", 101, 9, 5) + "," +
                        span_json("serve.request", 100, 100, 5));
  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.request_tree_count, 1u);
  std::remove(path.c_str());
}

TEST(TraceRequestTrees, OrphanedSpanIsRejected) {
  const std::string path = "observability_rid_orphan.json";
  write_trace(path, span_json("serve.forward", 110, 40, 5));
  const TraceValidation result = validate_trace_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("orphaned"), std::string::npos)
      << result.error;
  std::remove(path.c_str());
}

TEST(TraceRequestTrees, SpanOutsideRootIsRejected) {
  const std::string path = "observability_rid_outside.json";
  // Child begins before its root: not a connected tree.
  write_trace(path, span_json("serve.forward", 50, 40, 5) + "," +
                        span_json("serve.request", 100, 100, 5));
  const TraceValidation result = validate_trace_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("outside"), std::string::npos) << result.error;
  std::remove(path.c_str());
}

TEST(TraceRequestTrees, DuplicateRootsAreRejected) {
  const std::string path = "observability_rid_dup.json";
  write_trace(path, span_json("serve.request", 100, 50, 5) + "," +
                        span_json("serve.request", 160, 50, 5));
  const TraceValidation result = validate_trace_file(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("multiple"), std::string::npos)
      << result.error;
  std::remove(path.c_str());
}

TEST(TraceSampling, DeterministicModuloPeriod) {
  trace_reset();
  trace_start();
  set_trace_sample_period(4);
  EXPECT_TRUE(trace_should_sample(0));
  EXPECT_FALSE(trace_should_sample(1));
  EXPECT_FALSE(trace_should_sample(3));
  EXPECT_TRUE(trace_should_sample(4));
  EXPECT_TRUE(trace_should_sample(8));
  set_trace_sample_period(1);
  EXPECT_TRUE(trace_should_sample(17));  // period 1 = sample everything
  set_trace_sample_period(0);            // 0 normalizes to 1
  EXPECT_EQ(trace_sample_period(), 1u);
  const std::string path = "observability_sampling.json";
  ASSERT_TRUE(trace_stop(path));
  std::remove(path.c_str());
  // With tracing disabled nothing samples, whatever the period.
  set_trace_sample_period(4);
  EXPECT_FALSE(trace_should_sample(0));
  set_trace_sample_period(1);
}

TEST(TraceSuppress, ScopeSilencesNestedSpans) {
  const std::string path = "observability_suppress.json";
  trace_reset();
  trace_start();
  {
    TraceSuppressScope suppress(true);
    TraceSpan hidden("test.suppressed");
  }
  {
    TraceSuppressScope not_suppressing(false);
    TraceSpan visible("test.visible");
  }
  ASSERT_TRUE(trace_stop(path));
  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  bool saw_visible = false;
  for (const std::string& name : result.names) {
    EXPECT_NE(name, "test.suppressed");
    saw_visible |= name == "test.visible";
  }
  EXPECT_TRUE(saw_visible);
  std::remove(path.c_str());
}

TEST(KernelPool, PublishedGaugesCoverEveryWorker) {
  StatsEnabledScope stats_on;
  set_kernel_threads(2);
  parallel_blocks(1024, 1, [](std::size_t, std::size_t) {});
  publish_kernel_pool_stats();
  EXPECT_EQ(StatsRegistry::instance().gauge("pool.workers").value(), 2);
  set_kernel_threads(0);
  StatsRegistry::instance().reset();
}

}  // namespace
}  // namespace gcnt
