// Observability layer: stats registry (counters/gauges/histograms),
// trace spans + Chrome trace-event export, and their interaction with the
// kernel pool.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gcnt {
namespace {

/// Enables stats for one scope and restores the previous state after.
struct StatsEnabledScope {
  explicit StatsEnabledScope(bool on = true) : was_(stats_enabled()) {
    set_stats_enabled(on);
  }
  ~StatsEnabledScope() { set_stats_enabled(was_); }
  bool was_;
};

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index((1ull << 38)), 39u);
  // Values past the last boundary clamp into the final bucket.
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBucketCount - 1);

  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Histogram::bucket_lower_bound(3), 4u);
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    // Lower bound of bucket i is the first value that maps to it.
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(i + 1) - 1),
              i);
  }
}

TEST(Histogram, RecordMinMaxSumReset) {
  StatsEnabledScope stats_on;
  Histogram h;
  EXPECT_EQ(h.min(), 0u);  // empty convention
  h.record(5);
  h.record(0);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(0), 1u);                            // the zero
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(5)), 1u);   // 5
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(100)), 1u); // 100
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, DisabledRecordIsIgnored) {
  StatsEnabledScope stats_off(false);
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Counter, AddResetAndOverflowWrap) {
  StatsEnabledScope stats_on;
  Counter c;
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // Documented convention: wraps modulo 2^64.
  c.add(~std::uint64_t{0});
  EXPECT_EQ(c.value(), 9u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  set_stats_enabled(false);
  c.add(5);
  EXPECT_EQ(c.value(), 0u);  // gated off
}

TEST(StatsRegistry, StableReferencesAndSortedSnapshot) {
  StatsEnabledScope stats_on;
  StatsRegistry& registry = StatsRegistry::instance();
  Counter& a = registry.counter("test.zzz");
  Counter& b = registry.counter("test.aaa");
  EXPECT_EQ(&a, &registry.counter("test.zzz"));
  a.reset();
  b.reset();
  a.add(2);
  b.add(3);
  registry.gauge("test.gauge").set(-7);
  registry.histogram("test.hist").record(16);

  const StatsSnapshot snap = registry.snapshot();
  // Names are sorted, so "test.aaa" precedes "test.zzz".
  std::size_t index_aaa = snap.counters.size(), index_zzz = snap.counters.size();
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].first == "test.aaa") index_aaa = i;
    if (snap.counters[i].first == "test.zzz") index_zzz = i;
  }
  ASSERT_LT(index_aaa, snap.counters.size());
  ASSERT_LT(index_zzz, snap.counters.size());
  EXPECT_LT(index_aaa, index_zzz);
  EXPECT_EQ(snap.counters[index_aaa].second, 3u);
  EXPECT_EQ(snap.counters[index_zzz].second, 2u);

  bool saw_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.gauge") {
      saw_gauge = true;
      EXPECT_EQ(value, -7);
    }
  }
  EXPECT_TRUE(saw_gauge);

  std::ostringstream text;
  registry.write_text(text);
  EXPECT_NE(text.str().find("counter test.aaa 3"), std::string::npos);
  std::ostringstream json;
  registry.write_json(json);
  EXPECT_NE(json.str().find("\"test.aaa\": 3"), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter("test.aaa").value(), 0u);
  EXPECT_EQ(registry.histogram("test.hist").count(), 0u);
}

TEST(KernelStatsApi, CachedPairUpdatesRegistry) {
  StatsEnabledScope stats_on;
  KernelStats& stats = kernel_stats("unit_test_kernel");
  EXPECT_EQ(&stats, &kernel_stats("unit_test_kernel"));
  stats.calls.reset();
  {
    GCNT_KERNEL_SCOPE("unit_test_kernel");
  }
  EXPECT_EQ(StatsRegistry::instance()
                .counter("kernel.unit_test_kernel.calls")
                .value(),
            1u);
  EXPECT_GE(StatsRegistry::instance()
                .histogram("kernel.unit_test_kernel.ns")
                .count(),
            1u);
}

TEST(KernelStatsApi, DisabledScopeRecordsNothing) {
  StatsEnabledScope stats_off(false);
  KernelStats& stats = kernel_stats("unit_test_kernel_off");
  stats.calls.reset();
  {
    GCNT_KERNEL_SCOPE("unit_test_kernel_off");
  }
  EXPECT_EQ(stats.calls.value(), 0u);
}

TEST(Trace, ConcurrentSpansFromPoolWorkersProduceValidFile) {
  const std::string path = "observability_concurrent_trace.json";
  set_kernel_threads(8);
  trace_reset();
  trace_start();
  // 1024 indices, min_parallel 1 -> 8 blocks; the caller runs block 0 and
  // the pool workers run the other 7, so spans land on several threads.
  for (int round = 0; round < 4; ++round) {
    parallel_blocks(1024, 1, [](std::size_t begin, std::size_t end) {
      TraceSpan span("test.block");
      span.arg("size", static_cast<double>(end - begin));
      volatile std::size_t sink = 0;
      for (std::size_t i = begin; i < end; ++i) sink += i;
    });
  }
  ASSERT_TRUE(trace_stop(path));
  set_kernel_threads(0);

  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.span_count, 32u);
  EXPECT_GE(result.thread_count, 2u);
  bool saw_block = false, saw_pool_task = false;
  for (const std::string& name : result.names) {
    saw_block |= name == "test.block";
    saw_pool_task |= name == "pool.task";
  }
  EXPECT_TRUE(saw_block);
  EXPECT_TRUE(saw_pool_task);

  // Span args survive the round trip.
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"args\":{\"size\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, DisabledSpansRecordNothing) {
  const std::string path = "observability_disabled_trace.json";
  trace_reset();
  {
    TraceSpan span("test.should_not_appear");
    span.arg("x", 1.0);
  }
  ASSERT_TRUE(trace_stop(path));  // writes whatever was recorded: nothing
  const TraceValidation result = validate_trace_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.span_count, 0u);
  std::remove(path.c_str());
}

TEST(Trace, ValidatorRejectsMalformedFiles) {
  EXPECT_FALSE(validate_trace_file("no_such_file_12345.json").ok);

  const std::string path = "observability_bad_trace.json";
  {
    std::ofstream out(path);
    out << "{\"traceEvents\":[{\"name\":\"x\"}]}";  // missing ph/pid/tid
  }
  EXPECT_FALSE(validate_trace_file(path).ok);
  {
    std::ofstream out(path);
    out << "not json at all";
  }
  EXPECT_FALSE(validate_trace_file(path).ok);
  {
    // Regressing completion times within one tid must be rejected.
    std::ofstream out(path);
    out << "{\"traceEvents\":["
           "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":100,"
           "\"dur\":50},"
           "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,"
           "\"dur\":5}]}";
  }
  EXPECT_FALSE(validate_trace_file(path).ok);
  std::remove(path.c_str());
}

TEST(Trace, RingBufferDropsOldestAndCounts) {
  trace_reset();
  trace_start();
  // Default ring capacity is 65536 per thread; push past it.
  for (int i = 0; i < 70000; ++i) {
    TraceSpan span("test.flood");
  }
  EXPECT_GT(trace_dropped_spans(), 0u);
  trace_reset();
  EXPECT_EQ(trace_dropped_spans(), 0u);
  const std::string path = "observability_flood_trace.json";
  ASSERT_TRUE(trace_stop(path));
  std::remove(path.c_str());
}

/// Counter values and histogram *counts* (sums are wall-clock-derived)
/// from two identical single-threaded runs must match exactly.
TEST(Stats, SnapshotDeterministicUnderSingleThreadPool) {
  StatsEnabledScope stats_on;
  set_kernel_threads(1);

  const auto run_workload = [] {
    StatsRegistry::instance().reset();
    CooMatrix coo(64, 64);
    for (std::uint32_t i = 0; i < 64; ++i) {
      coo.add(i, (i * 7 + 3) % 64, 1.0f);
      coo.add(i, i, 0.5f);
    }
    const CsrMatrix csr = CsrMatrix::from_coo(coo);
    Matrix dense(64, 8, 0.25f);
    Matrix out;
    for (int rep = 0; rep < 5; ++rep) csr.spmm(dense, out);
    return StatsRegistry::instance().snapshot();
  };

  const StatsSnapshot first = run_workload();
  const StatsSnapshot second = run_workload();

  ASSERT_EQ(first.counters.size(), second.counters.size());
  for (std::size_t i = 0; i < first.counters.size(); ++i) {
    EXPECT_EQ(first.counters[i].first, second.counters[i].first);
    EXPECT_EQ(first.counters[i].second, second.counters[i].second)
        << first.counters[i].first;
  }
  ASSERT_EQ(first.histograms.size(), second.histograms.size());
  for (std::size_t i = 0; i < first.histograms.size(); ++i) {
    EXPECT_EQ(first.histograms[i].name, second.histograms[i].name);
    EXPECT_EQ(first.histograms[i].count, second.histograms[i].count)
        << first.histograms[i].name;
  }
  EXPECT_EQ(StatsRegistry::instance()
                .counter("kernel.spmm.calls")
                .value(),
            5u);

  set_kernel_threads(0);
  StatsRegistry::instance().reset();
}

TEST(KernelPool, PublishedGaugesCoverEveryWorker) {
  StatsEnabledScope stats_on;
  set_kernel_threads(2);
  parallel_blocks(1024, 1, [](std::size_t, std::size_t) {});
  publish_kernel_pool_stats();
  EXPECT_EQ(StatsRegistry::instance().gauge("pool.workers").value(), 2);
  set_kernel_threads(0);
  StatsRegistry::instance().reset();
}

}  // namespace
}  // namespace gcnt
