// SIMD backend contract: runtime dispatch overrides, the unified GEMM
// accumulation policy, per-target bitwise determinism across thread
// counts and SpMM tile widths, cross-target tolerance, and the fused
// bias/ReLU epilogues (see src/tensor/simd/simd.h and docs/API.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "tensor/matrix.h"
#include "tensor/simd/simd.h"
#include "tensor/sparse.h"

namespace gcnt {
namespace {

/// Restores process-wide kernel knobs after every test.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override {
    reset_simd_target();
    set_kernel_threads(0);
    set_spmm_tile_cols(0);
  }
};

Matrix random_dense(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

/// Strictly positive entries: no zero-skip shortcuts, no -0.0 edge cases,
/// so bitwise comparisons isolate pure accumulation-order effects.
Matrix random_positive(std::size_t rows, std::size_t cols,
                       std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = 0.25f + static_cast<float>(rng.uniform());
  }
  return m;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) t.at(c, r) = m.at(r, c);
  }
  return t;
}

/// Random sparse matrix with ~nnz entries (duplicates merge in from_coo).
CsrMatrix random_csr(std::size_t rows, std::size_t cols, std::size_t nnz,
                     std::uint64_t seed) {
  CooMatrix coo(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto r = static_cast<std::uint32_t>(rng.uniform(0.0, rows));
    const auto c = static_cast<std::uint32_t>(rng.uniform(0.0, cols));
    coo.add(r, c, static_cast<float>(rng.normal()));
  }
  return CsrMatrix::from_coo(coo);
}

void expect_close(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows() * a.cols(); ++i) {
    const float x = a.data()[i];
    const float y = b.data()[i];
    ASSERT_NEAR(x, y, tol * (1.0f + std::max(std::fabs(x), std::fabs(y))))
        << "element " << i;
  }
}

/// Runs `fn` once per available dispatch target, appending one result per
/// target to `results` (scalar always first). Leaves the override reset.
template <typename Fn>
void run_per_target(Fn&& fn, std::vector<Matrix>& results) {
  ASSERT_TRUE(set_simd_target(SimdTarget::kScalar)) << "scalar always runs";
  results.push_back(fn());
  for (const SimdTarget target : {SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (simd_target_available(target)) {
      ASSERT_TRUE(set_simd_target(target));
      results.push_back(fn());
    }
  }
  reset_simd_target();
}

TEST_F(SimdTest, DispatchOverrideAndIntrospection) {
  // Gauge writes are dropped while collection is off; the dispatcher
  // publishes "simd.target" on every (re)resolution, so enable stats
  // before switching targets.
  const bool stats_were_enabled = stats_enabled();
  set_stats_enabled(true);
  ASSERT_TRUE(simd_target_available(SimdTarget::kScalar));
  ASSERT_TRUE(set_simd_target(SimdTarget::kScalar));
  EXPECT_EQ(simd_target(), SimdTarget::kScalar);
  EXPECT_STREQ(simd_target_name(), "scalar");
  EXPECT_STREQ(simd_ops().name, "scalar");
  EXPECT_EQ(StatsRegistry::instance().gauge("simd.target").value(), 0);

  if (simd_target_available(SimdTarget::kAvx2)) {
    ASSERT_TRUE(set_simd_target(SimdTarget::kAvx2));
    EXPECT_EQ(simd_target(), SimdTarget::kAvx2);
    EXPECT_STREQ(simd_target_name(), "avx2");
    EXPECT_EQ(StatsRegistry::instance().gauge("simd.target").value(), 1);
  } else {
    EXPECT_FALSE(set_simd_target(SimdTarget::kAvx2));
    EXPECT_EQ(simd_target(), SimdTarget::kScalar) << "failed set is a no-op";
  }

  reset_simd_target();
  // After reset the resolved target must be one this host can execute.
  EXPECT_TRUE(simd_target_available(simd_target()));
  set_stats_enabled(stats_were_enabled);
}

TEST_F(SimdTest, EnvOverrideRespectedAfterReset) {
  ASSERT_EQ(setenv("GCNT_SIMD", "scalar", 1), 0);
  reset_simd_target();
  EXPECT_EQ(simd_target(), SimdTarget::kScalar);
  EXPECT_STREQ(simd_target_name(), "scalar");
  ASSERT_EQ(unsetenv("GCNT_SIMD"), 0);
  reset_simd_target();
  EXPECT_TRUE(simd_target_available(simd_target()));
}

// The unified accumulation policy (matrix.h): all four transpose variants
// accumulate in fp32 ascending-p order. With alpha == 1 and strictly
// positive operands every variant performs the identical sequence of
// float operations per output element on the scalar target.
TEST_F(SimdTest, GemmTransposeVariantsAgreeBitwiseOnScalar) {
  ASSERT_TRUE(set_simd_target(SimdTarget::kScalar));
  const std::size_t m = 70, k = 50, n = 90;
  const Matrix a = random_positive(m, k, 11);
  const Matrix b = random_positive(k, n, 22);
  const Matrix at = transpose(a);
  const Matrix bt = transpose(b);

  Matrix nn, tn, nt, tt;
  gemm(a, b, nn, false, false);
  gemm(at, b, tn, true, false);
  gemm(a, bt, nt, false, true);
  gemm(at, bt, tt, true, true);

  EXPECT_EQ(nn, tn);
  EXPECT_EQ(nn, nt);
  EXPECT_EQ(nn, tt);
}

// On AVX2 the row-update variants (nn / tn) still run the identical
// per-element fmaf sequence; nt (lane-blocked dot) and tt (plain scalar
// multiply-add, two roundings) agree within tolerance.
TEST_F(SimdTest, GemmTransposeVariantsAgreeAcrossTargets) {
  const std::size_t m = 70, k = 50, n = 90;
  const Matrix a = random_positive(m, k, 33);
  const Matrix b = random_positive(k, n, 44);
  const Matrix at = transpose(a);
  const Matrix bt = transpose(b);

  if (simd_target_available(SimdTarget::kAvx2)) {
    ASSERT_TRUE(set_simd_target(SimdTarget::kAvx2));
    Matrix nn, tn, nt, tt;
    gemm(a, b, nn, false, false);
    gemm(at, b, tn, true, false);
    gemm(a, bt, nt, false, true);
    gemm(at, bt, tt, true, true);
    EXPECT_EQ(nn, tn) << "both are axpy row updates with one fmaf per term";
    expect_close(nn, nt, 1e-5f);
    expect_close(nn, tt, 1e-5f);
  }

  // Scalar vs AVX2: FMA contraction only, stays within tight tolerance.
  std::vector<Matrix> across;
  run_per_target(
      [&] {
        Matrix out;
        gemm(a, b, out, false, false, 0.75f);
        return out;
      },
      across);
  for (std::size_t i = 1; i < across.size(); ++i) {
    expect_close(across[0], across[i], 1e-5f);
  }
}

// For a fixed target, GEMM must be bitwise identical across thread
// counts (deterministic static row partitioning, per-row order intact).
TEST_F(SimdTest, GemmBitwiseInvariantAcrossThreadsPerTarget) {
  const Matrix a = random_dense(300, 96, 55);
  const Matrix b = random_dense(96, 160, 66);
  for (const SimdTarget target :
       {SimdTarget::kScalar, SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (!simd_target_available(target)) continue;
    ASSERT_TRUE(set_simd_target(target));
    Matrix single, eight;
    set_kernel_threads(1);
    gemm(a, b, single, false, false);
    set_kernel_threads(8);
    gemm(a, b, eight, false, false);
    set_kernel_threads(0);
    EXPECT_EQ(single, eight) << "target " << simd_target_name();
  }
}

// SpMM and spmm_rows: bitwise identical per target across thread counts
// AND tile widths; within tolerance across targets.
TEST_F(SimdTest, SpmmBitwiseInvariantAcrossThreadsAndTilesPerTarget) {
  const CsrMatrix csr = random_csr(400, 300, 4000, 77);
  const Matrix dense = random_dense(300, 96, 88);
  std::vector<std::uint32_t> row_ids;
  for (std::uint32_t r = 3; r < 400; r += 7) row_ids.push_back(r);

  std::vector<Matrix> per_target_full;
  std::vector<Matrix> per_target_rows;
  for (const SimdTarget target :
       {SimdTarget::kScalar, SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (!simd_target_available(target)) continue;
    ASSERT_TRUE(set_simd_target(target));

    Matrix reference;
    set_spmm_tile_cols(0);
    set_kernel_threads(1);
    csr.spmm(dense, reference);
    Matrix rows_reference;
    csr.spmm_rows(row_ids, dense, rows_reference);

    for (const std::size_t tile : {std::size_t{8}, std::size_t{16},
                                   std::size_t{64}}) {
      for (const int threads : {1, 8}) {
        set_spmm_tile_cols(tile);
        set_kernel_threads(threads);
        Matrix out;
        csr.spmm(dense, out);
        EXPECT_EQ(reference, out) << simd_target_name() << " tile " << tile
                                  << " threads " << threads;
        Matrix rows_out;
        csr.spmm_rows(row_ids, dense, rows_out);
        EXPECT_EQ(rows_reference, rows_out)
            << simd_target_name() << " tile " << tile << " threads "
            << threads;
      }
    }
    set_spmm_tile_cols(0);
    set_kernel_threads(0);

    // Each compact spmm_rows row reproduces the full spmm row bit-for-bit.
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      for (std::size_t c = 0; c < reference.cols(); ++c) {
        ASSERT_EQ(reference.at(row_ids[i], c), rows_reference.at(i, c));
      }
    }
    per_target_full.push_back(std::move(reference));
    per_target_rows.push_back(std::move(rows_reference));
  }
  for (std::size_t i = 1; i < per_target_full.size(); ++i) {
    expect_close(per_target_full[0], per_target_full[i], 1e-5f);
    expect_close(per_target_rows[0], per_target_rows[i], 1e-5f);
  }
}

// gemm_bias_act must be bitwise identical to the unfused pipeline
// (gemm, then bias broadcast, then optional ReLU) on every target.
TEST_F(SimdTest, GemmBiasActMatchesUnfusedBitwise) {
  const Matrix a = random_dense(150, 64, 99);
  const Matrix b = random_dense(64, 80, 111);
  const Matrix bias = random_dense(1, 80, 122);

  for (const SimdTarget target :
       {SimdTarget::kScalar, SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (!simd_target_available(target)) continue;
    ASSERT_TRUE(set_simd_target(target));

    Matrix reference;
    gemm(a, b, reference, false, false);
    for (std::size_t r = 0; r < reference.rows(); ++r) {
      for (std::size_t c = 0; c < reference.cols(); ++c) {
        reference.at(r, c) += bias.at(0, c);
      }
    }
    Matrix fused_linear;
    gemm_bias_act(a, b, bias, fused_linear, /*relu=*/false);
    EXPECT_EQ(reference, fused_linear) << simd_target_name();

    for (std::size_t i = 0; i < reference.rows() * reference.cols(); ++i) {
      float& v = reference.data()[i];
      v = v > 0.0f ? v : 0.0f;
    }
    Matrix fused_relu;
    gemm_bias_act(a, b, bias, fused_relu, /*relu=*/true);
    EXPECT_EQ(reference, fused_relu) << simd_target_name();
  }
}

// spmm_bias_relu must be bitwise identical to spmm + bias + ReLU for any
// tile width and thread count on a fixed target.
TEST_F(SimdTest, SpmmBiasReluMatchesUnfusedBitwise) {
  const CsrMatrix csr = random_csr(250, 180, 2500, 133);
  const Matrix dense = random_dense(180, 48, 144);
  const Matrix bias = random_dense(1, 48, 155);

  for (const SimdTarget target :
       {SimdTarget::kScalar, SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (!simd_target_available(target)) continue;
    ASSERT_TRUE(set_simd_target(target));

    Matrix reference;
    csr.spmm(dense, reference);
    for (std::size_t r = 0; r < reference.rows(); ++r) {
      for (std::size_t c = 0; c < reference.cols(); ++c) {
        const float v = reference.at(r, c) + bias.at(0, c);
        reference.at(r, c) = v > 0.0f ? v : 0.0f;
      }
    }

    for (const std::size_t tile :
         {std::size_t{0}, std::size_t{8}, std::size_t{64}}) {
      for (const int threads : {1, 8}) {
        set_spmm_tile_cols(tile);
        set_kernel_threads(threads);
        Matrix fused;
        csr.spmm_bias_relu(dense, bias, fused);
        EXPECT_EQ(reference, fused) << simd_target_name() << " tile " << tile
                                    << " threads " << threads;
      }
    }
    set_spmm_tile_cols(0);
    set_kernel_threads(0);
  }
}

// Elementwise ops route through the dispatch table; axpy/scale/relu must
// be bitwise identical to their naive loops per target (lanes map 1:1).
TEST_F(SimdTest, ElementwiseOpsMatchNaiveLoops) {
  const std::size_t n = 1013;  // odd size exercises every tail path
  const Matrix x = random_dense(1, n, 166);
  for (const SimdTarget target :
       {SimdTarget::kScalar, SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (!simd_target_available(target)) continue;
    ASSERT_TRUE(set_simd_target(target));
    const SimdOps& ops = simd_ops();

    Matrix y = random_dense(1, n, 177);
    Matrix expected = y;
    ops.axpy(y.data(), x.data(), 0.5f, n);
    if (target == SimdTarget::kScalar) {
      for (std::size_t i = 0; i < n; ++i) {
        expected.data()[i] += 0.5f * x.data()[i];
      }
      EXPECT_EQ(expected, y);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        expected.data()[i] = std::fmaf(0.5f, x.data()[i], expected.data()[i]);
      }
      EXPECT_EQ(expected, y) << "AVX2 axpy is one fmaf per element";
    }

    Matrix z = random_dense(1, n, 188);
    Matrix z_expected = z;
    ops.relu(z.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      float& v = z_expected.data()[i];
      v = v > 0.0f ? v : 0.0f;  // canonicalizes -0.0 like _mm256_max_ps
    }
    EXPECT_EQ(z_expected, z);

    Matrix s = random_dense(1, n, 199);
    Matrix s_expected = s;
    ops.scale(s.data(), -1.25f, n);
    for (std::size_t i = 0; i < n; ++i) s_expected.data()[i] *= -1.25f;
    EXPECT_EQ(s_expected, s);

    // dot: exact on scalar (ascending order), tolerance on AVX2
    // (lane-blocked partial sums reassociate).
    const float d = ops.dot(x.data(), z.data(), n);
    float naive = 0.0f;
    for (std::size_t i = 0; i < n; ++i) naive += x.data()[i] * z.data()[i];
    if (target == SimdTarget::kScalar) {
      EXPECT_EQ(naive, d);
    } else {
      EXPECT_NEAR(naive, d, 1e-3f * (1.0f + std::fabs(naive)));
    }
  }
}

// Lengths around every lane boundary of the widest target: 16 fp32 lanes
// (AVX-512) and 64 int8 lanes per maddubs block. 0, 1, lane-1, lane,
// lane+1 plus a non-multiple beyond one full vector exercise the masked
// tail, the pure-mask (sub-lane) case, and the body+tail combination.
const std::size_t kTailLengths[] = {0,  1,  15, 16, 17, 31, 32,
                                    33, 63, 64, 65, 100};

// AVX-512 fp32 contract: bitwise identical to AVX2 (same FMA contraction
// and lane-blocked dot partials), with the masked tails never diverging
// from the vector body. Pin every fp32 table entry at every tail length.
TEST_F(SimdTest, Avx512Fp32MatchesAvx2BitwiseAtMaskedTailLengths) {
  if (!simd_target_available(SimdTarget::kAvx512) ||
      !simd_target_available(SimdTarget::kAvx2)) {
    GTEST_SKIP() << "host lacks avx512 or avx2";
  }
  const std::size_t max_n = 128;
  const Matrix x = random_dense(1, max_n, 211);
  const Matrix base = random_dense(1, max_n, 222);

  for (const std::size_t n : kTailLengths) {
    Matrix y2 = base, y5 = base, b2 = base, b5 = base, r2 = base, r5 = base,
           s2 = base, s5 = base, br2 = base, br5 = base;
    ASSERT_TRUE(set_simd_target(SimdTarget::kAvx2));
    simd_ops().axpy(y2.data(), x.data(), 0.75f, n);
    simd_ops().bias_add(b2.data(), x.data(), n);
    simd_ops().bias_relu(br2.data(), x.data(), n);
    simd_ops().relu(r2.data(), n);
    simd_ops().scale(s2.data(), -1.25f, n);
    const float d2 = simd_ops().dot(x.data(), base.data(), n);

    ASSERT_TRUE(set_simd_target(SimdTarget::kAvx512));
    simd_ops().axpy(y5.data(), x.data(), 0.75f, n);
    simd_ops().bias_add(b5.data(), x.data(), n);
    simd_ops().bias_relu(br5.data(), x.data(), n);
    simd_ops().relu(r5.data(), n);
    simd_ops().scale(s5.data(), -1.25f, n);
    const float d5 = simd_ops().dot(x.data(), base.data(), n);

    EXPECT_EQ(y2, y5) << "axpy n=" << n;
    EXPECT_EQ(b2, b5) << "bias_add n=" << n;
    EXPECT_EQ(br2, br5) << "bias_relu n=" << n;
    EXPECT_EQ(r2, r5) << "relu n=" << n;
    EXPECT_EQ(s2, s5) << "scale n=" << n;
    EXPECT_EQ(d2, d5) << "dot n=" << n;
  }
}

// The int8 ops are bitwise identical across ALL targets (exact integer
// accumulation, fixed per-element float sequence — simd.h contract).
// Scalar is the reference; every vector target must reproduce it at
// every tail length, including zero-length calls.
TEST_F(SimdTest, Int8OpsBitwiseMatchScalarAtMaskedTailLengths) {
  const std::size_t max_n = 128;
  Rng rng(233);
  std::vector<std::uint8_t> codes(max_n);
  std::vector<std::int8_t> weights(max_n);
  Matrix xf(1, max_n);
  for (std::size_t i = 0; i < max_n; ++i) {
    codes[i] = static_cast<std::uint8_t>(rng.uniform(0.0, 128.0));
    weights[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
    xf.data()[i] = static_cast<float>(rng.normal()) * 3.0f;
  }
  // Include the quantize_u8 clamp extremes in the float input.
  if (max_n >= 4) {
    xf.data()[0] = 400.0f;
    xf.data()[1] = -400.0f;
    xf.data()[2] = 0.0f;
    xf.data()[3] = std::numeric_limits<float>::quiet_NaN();
  }
  const Matrix ybase = random_dense(1, max_n, 244);

  for (const std::size_t n : kTailLengths) {
    ASSERT_TRUE(set_simd_target(SimdTarget::kScalar));
    const std::int32_t dot_ref =
        simd_ops().dot_u8s8(codes.data(), weights.data(), n);
    Matrix axpy_ref = ybase;
    simd_ops().axpy_dq8(axpy_ref.data(), codes.data(), 0.035f, 41, n);
    std::vector<std::uint8_t> q_ref(max_n, 0xEE);
    simd_ops().quantize_u8(q_ref.data(), xf.data(), 17.0f, 63, n);
    Matrix dq_ref(1, max_n, -5.0f);
    simd_ops().dequantize_u8(dq_ref.data(), codes.data(), 0.02f, 41, n);

    for (const SimdTarget target : {SimdTarget::kAvx2, SimdTarget::kAvx512}) {
      if (!simd_target_available(target)) continue;
      ASSERT_TRUE(set_simd_target(target));
      EXPECT_EQ(dot_ref, simd_ops().dot_u8s8(codes.data(), weights.data(), n))
          << simd_target_name() << " dot_u8s8 n=" << n;
      Matrix axpy_out = ybase;
      simd_ops().axpy_dq8(axpy_out.data(), codes.data(), 0.035f, 41, n);
      EXPECT_EQ(axpy_ref, axpy_out)
          << simd_target_name() << " axpy_dq8 n=" << n;
      std::vector<std::uint8_t> q_out(max_n, 0xEE);
      simd_ops().quantize_u8(q_out.data(), xf.data(), 17.0f, 63, n);
      EXPECT_EQ(q_ref, q_out) << simd_target_name() << " quantize_u8 n=" << n;
      Matrix dq_out(1, max_n, -5.0f);
      simd_ops().dequantize_u8(dq_out.data(), codes.data(), 0.02f, 41, n);
      EXPECT_EQ(dq_ref, dq_out)
          << simd_target_name() << " dequantize_u8 n=" << n;
    }
  }
}

// Scalar int8 semantics against naive loops: exact integer dot, the
// documented fmaf sequence for axpy_dq8, nearest-even rounding + clamp
// for quantize_u8 (NaN -> code 0), single multiply for dequantize_u8.
TEST_F(SimdTest, Int8OpsMatchNaiveReferenceOnScalar) {
  ASSERT_TRUE(set_simd_target(SimdTarget::kScalar));
  const SimdOps& ops = simd_ops();
  const std::size_t n = 77;
  Rng rng(255);
  std::vector<std::uint8_t> codes(n);
  std::vector<std::int8_t> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<std::uint8_t>(rng.uniform(0.0, 128.0));
    weights[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
  }

  std::int64_t naive = 0;
  for (std::size_t i = 0; i < n; ++i) {
    naive += static_cast<std::int32_t>(codes[i]) * weights[i];
  }
  EXPECT_EQ(naive, ops.dot_u8s8(codes.data(), weights.data(), n));

  Matrix y = random_dense(1, n, 266);
  Matrix y_expected = y;
  ops.axpy_dq8(y.data(), codes.data(), 0.125f, 30, n);
  for (std::size_t i = 0; i < n; ++i) {
    y_expected.data()[i] =
        std::fmaf(0.125f, static_cast<float>(static_cast<int>(codes[i]) - 30),
                  y_expected.data()[i]);
  }
  EXPECT_EQ(y_expected, y);

  // 2.5 * 1 = 2.5 rounds to 2 (nearest even), 3.5 * 1 = 3.5 rounds to 4.
  const float ties[] = {2.5f, 3.5f, -100.0f, 500.0f,
                        std::numeric_limits<float>::quiet_NaN()};
  std::uint8_t tie_codes[5];
  ops.quantize_u8(tie_codes, ties, 1.0f, 10, 5);
  EXPECT_EQ(tie_codes[0], 12);   // 10 + round(2.5) = 10 + 2
  EXPECT_EQ(tie_codes[1], 14);   // 10 + round(3.5) = 10 + 4
  EXPECT_EQ(tie_codes[2], 0);    // clamped low
  EXPECT_EQ(tie_codes[3], 127);  // clamped high
  EXPECT_EQ(tie_codes[4], 0);    // NaN quantizes to code 0

  Matrix dq(1, n);
  ops.dequantize_u8(dq.data(), codes.data(), 0.25f, 30, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dq.data()[i],
              static_cast<float>(static_cast<int>(codes[i]) - 30) * 0.25f);
  }
}

#if defined(GCNT_DEBUG_ASSERTS)
// Debug builds: out-of-range Matrix access trips GCNT_DEBUG_ASSERT and
// aborts with a diagnostic. Compiled out entirely in Release.
TEST(SimdDebugAssertDeathTest, MatrixAtOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Matrix m(2, 3);
  EXPECT_DEATH((void)m.at(2, 0), "GCNT_DEBUG_ASSERT failed");
  EXPECT_DEATH((void)m.at(0, 3), "GCNT_DEBUG_ASSERT failed");
  EXPECT_DEATH((void)m.row(2), "GCNT_DEBUG_ASSERT failed");
}
#else
// Release builds compile the assertion away: out-of-contract reads are
// not checked (this test just pins that the macro expands to a no-op).
TEST(SimdDebugAssertDeathTest, ReleaseBuildCompilesAssertsOut) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
}
#endif

}  // namespace
}  // namespace gcnt
