// Structural Verilog reader/writer.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "netlist/verilog_io.h"
#include "sim/logic_sim.h"

namespace gcnt {
namespace {

constexpr const char* kSample = R"(
// a tiny design
module sample (a, b, c, y, z);
  input a, b;
  input c;
  output y, z;
  wire w1, w2;  /* internal nets */
  nand g1 (w1, a, b);
  xor  g2 (w2, w1, c);
  not  g3 (y, w2);
  assign z = w1;
endmodule
)";

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

TEST(VerilogIo, ParsesSample) {
  const Netlist n = read_verilog_string(kSample);
  EXPECT_EQ(n.name(), "sample");
  EXPECT_EQ(n.primary_inputs().size(), 3u);
  EXPECT_EQ(n.primary_outputs().size(), 2u);
  EXPECT_TRUE(n.validate().empty());
  EXPECT_EQ(n.type(by_name(n, "w1")), CellType::kNand);
  EXPECT_EQ(n.type(by_name(n, "w2")), CellType::kXor);
  EXPECT_EQ(n.type(by_name(n, "z")), CellType::kBuf);  // assign alias
}

TEST(VerilogIo, InstanceNamesOptional) {
  const Netlist n = read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  not (y, a);
endmodule
)");
  EXPECT_TRUE(n.validate().empty());
  EXPECT_EQ(n.type(by_name(n, "y")), CellType::kNot);
}

TEST(VerilogIo, DffSupported) {
  const Netlist n = read_verilog_string(R"(
module m (d, q);
  input d;
  output q;
  dff ff0 (q, d);
endmodule
)");
  EXPECT_EQ(n.flip_flops().size(), 1u);
  EXPECT_TRUE(n.validate().empty());
}

TEST(VerilogIo, CommentsStripped) {
  const Netlist n = read_verilog_string(
      "module m (a, y); // ports\n input a; /* multi\nline */ output y;\n"
      "buf g (y, a);\nendmodule\n");
  EXPECT_TRUE(n.validate().empty());
}

TEST(VerilogIo, ErrorsCarryLineNumbers) {
  try {
    read_verilog_string("module m (a);\n input a;\n frob g (x, a);\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(VerilogIo, UndeclaredNetThrows) {
  EXPECT_THROW(read_verilog_string(
                   "module m (a, y);\n input a;\n output y;\n"
                   "and g (y, a, ghost);\nendmodule\n"),
               std::runtime_error);
}

TEST(VerilogIo, MultipleDriversThrow) {
  EXPECT_THROW(read_verilog_string(
                   "module m (a, y);\n input a;\n output y;\n"
                   "buf g1 (y, a);\n buf g2 (y, a);\nendmodule\n"),
               std::runtime_error);
}

TEST(VerilogIo, MissingSemicolonThrows) {
  EXPECT_THROW(
      read_verilog_string("module m (a, y);\n input a\n output y;\n"),
      std::runtime_error);
}

/// Simulates both netlists on the same named stimulus and compares POs.
void expect_equivalent(const Netlist& a, const Netlist& b,
                       std::uint64_t seed) {
  LogicSimulator sim_a(a);
  LogicSimulator sim_b(b);
  ASSERT_EQ(sim_a.sources().size(), sim_b.sources().size());

  Rng rng(seed);
  const PatternBatch batch_a = sim_a.random_batch(rng);
  std::map<std::string, std::uint64_t> stimulus;
  for (std::size_t i = 0; i < sim_a.sources().size(); ++i) {
    stimulus[a.node_name(sim_a.sources()[i])] = batch_a[i];
  }
  PatternBatch batch_b(sim_b.sources().size());
  for (std::size_t i = 0; i < sim_b.sources().size(); ++i) {
    batch_b[i] = stimulus.at(b.node_name(sim_b.sources()[i]));
  }

  std::vector<std::uint64_t> values_a, values_b;
  sim_a.simulate(batch_a, values_a);
  sim_b.simulate(batch_b, values_b);
  // Primary outputs correspond positionally (writer preserves order).
  ASSERT_EQ(a.primary_outputs().size(), b.primary_outputs().size());
  for (std::size_t i = 0; i < a.primary_outputs().size(); ++i) {
    const NodeId pa = a.primary_outputs()[i];
    const NodeId pb = b.primary_outputs()[i];
    EXPECT_EQ(values_a[a.fanins(pa).front()], values_b[b.fanins(pb).front()]);
  }
}

TEST(VerilogIo, RoundTripPreservesBehavior) {
  const Netlist original = read_verilog_string(kSample);
  const Netlist reparsed =
      read_verilog_string(write_verilog_string(original), "rt");
  EXPECT_TRUE(reparsed.validate().empty());
  expect_equivalent(original, reparsed, 11);
}

TEST(VerilogIo, GeneratedCircuitRoundTrip) {
  GeneratorConfig config;
  config.seed = 77;
  config.target_gates = 300;
  config.primary_inputs = 10;
  config.primary_outputs = 5;
  config.flip_flops = 8;
  const Netlist original = generate_circuit(config);
  const Netlist reparsed =
      read_verilog_string(write_verilog_string(original), "rt");
  EXPECT_TRUE(reparsed.validate().empty());
  expect_equivalent(original, reparsed, 13);
}

TEST(VerilogIo, ObservePointsBecomeOutputs) {
  Netlist n = read_verilog_string(kSample);
  n.insert_observe_point(by_name(n, "w1"));
  const std::string text = write_verilog_string(n);
  EXPECT_NE(text.find("observation point"), std::string::npos);
  const Netlist reparsed = read_verilog_string(text, "rt");
  // The OP re-reads as an ordinary module output — same observability.
  EXPECT_EQ(reparsed.primary_outputs().size(), n.primary_outputs().size() + 1);
}

}  // namespace
}  // namespace gcnt
