// Int8 quantized inference tier (gcn/quant.h): calibration and round-trip
// bounds, the integer GEMM/SpMM kernels against naive references, the
// model-level bitwise determinism contract across threads / tiles /
// dispatch targets, artifact v2 round-trips, the fp32 fallback rules of
// the incremental and sharded engines, and the ForwardWorkspace reuse
// regression across graph-dimension changes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "gcn/incremental.h"
#include "gcn/model.h"
#include "gcn/quant.h"
#include "gcn/serialize.h"
#include "gcn/shard.h"
#include "gcn/workspace.h"
#include "gen/generator.h"
#include "tensor/simd/simd.h"

namespace gcnt {
namespace {

/// Restores process-wide kernel knobs after every test.
class QuantTest : public ::testing::Test {
 protected:
  void TearDown() override {
    reset_simd_target();
    set_kernel_threads(0);
    set_spmm_tile_cols(0);
  }
};

Matrix random_dense(std::size_t rows, std::size_t cols, std::uint64_t seed,
                    float spread = 1.0f) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = static_cast<float>(rng.normal()) * spread;
  }
  return m;
}

GraphTensors generated_tensors(std::size_t gates, std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = gates;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.trap_fraction = 0.1;
  GraphTensors tensors = build_graph_tensors(generate_circuit(config));
  tensors.standardize_features();
  return tensors;
}

GcnConfig small_config() {
  GcnConfig config;
  config.depth = 2;
  config.embed_dims = {12, 16};
  config.fc_dims = {10};
  config.seed = 7;
  return config;
}

TEST_F(QuantTest, TensorRoundTripErrorBoundedByHalfScalePerRow) {
  Matrix x = random_dense(60, 33, 5, 4.0f);
  // A row with huge dynamic range, an all-zero row, and scattered exact
  // zeros: the per-row scheme must keep each row's error within its own
  // half-step and reproduce zeros exactly.
  for (std::size_t c = 0; c < x.cols(); ++c) x.at(1, c) = 0.0f;
  x.at(2, 0) = 900.0f;
  x.at(2, 1) = 0.001f;
  x.at(3, 5) = 0.0f;

  QuantizedTensor q;
  quantize_tensor(x, q);
  ASSERT_EQ(q.rows, x.rows());
  ASSERT_EQ(q.cols, x.cols());
  ASSERT_EQ(q.scales.size(), x.rows());
  ASSERT_EQ(q.zero_points.size(), x.rows());

  Matrix back;
  dequantize_tensor(q, back);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_GE(q.zero_points[r], 0);
    EXPECT_LE(q.zero_points[r], 127);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_LE(std::fabs(back.at(r, c) - x.at(r, c)),
                q.scales[r] * 0.5f + 1e-6f)
          << "row " << r << " col " << c;
      if (x.at(r, c) == 0.0f) {
        EXPECT_EQ(back.at(r, c), 0.0f) << "exact zero must survive";
      }
    }
  }
}

TEST_F(QuantTest, QuantizeLinearUsesPerColumnScales) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  // Column 0 spans [-2, 2], column 1 spans [-0.01, 0.01]: a per-layer
  // scale would leave column 1 with codes in {-1, 0, 1}.
  layer.weight.value.at(0, 0) = 2.0f;
  layer.weight.value.at(1, 0) = -1.0f;
  layer.weight.value.at(2, 0) = 0.5f;
  layer.weight.value.at(0, 1) = 0.01f;
  layer.weight.value.at(1, 1) = -0.005f;
  layer.weight.value.at(2, 1) = 0.0025f;

  const QuantizedLinear q = quantize_linear(layer);
  ASSERT_EQ(q.in, 3u);
  ASSERT_EQ(q.out, 2u);
  ASSERT_EQ(q.scales.size(), 2u);
  EXPECT_FLOAT_EQ(q.scales[0], 2.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scales[1], 0.01f / 127.0f);
  // Transposed storage: row j holds column j's codes at full resolution.
  EXPECT_EQ(q.row(0)[0], 127);
  EXPECT_EQ(q.row(0)[1], -64);  // round(-1 / (2/127)) = round(-63.5)
  EXPECT_EQ(q.row(1)[0], 127);
  EXPECT_EQ(q.row(1)[1], -64);  // small column keeps 8-bit resolution
  for (std::size_t j = 0; j < q.out; ++j) {
    std::int32_t sum = 0;
    for (std::size_t k = 0; k < q.in; ++k) sum += q.row(j)[k];
    EXPECT_EQ(q.col_sums[j], sum);
  }
}

TEST_F(QuantTest, MakeQuantizedLinearValidatesShapesAndScales) {
  std::vector<std::int8_t> codes(6, 1);
  std::vector<float> scales(2, 0.5f);
  EXPECT_NO_THROW(make_quantized_linear(3, 2, scales, codes));
  EXPECT_THROW(make_quantized_linear(3, 3, scales, codes), Error);
  EXPECT_THROW(make_quantized_linear(3, 2, {0.5f}, codes), Error);
  EXPECT_THROW(make_quantized_linear(3, 2, {0.5f, 0.0f}, codes), Error);
  EXPECT_THROW(make_quantized_linear(3, 2, {0.5f, -1.0f}, codes), Error);
  std::vector<std::int8_t> bad = codes;
  bad[4] = std::numeric_limits<std::int8_t>::min();  // -128 never emitted
  EXPECT_THROW(make_quantized_linear(3, 2, scales, bad), Error);
}

TEST_F(QuantTest, QuantizedLinearForwardMatchesIntegerReference) {
  const std::size_t rows = 40, in = 24, out = 18;
  Rng rng(3);
  Linear layer(in, out, rng);
  const Matrix x = random_dense(rows, in, 17, 2.0f);
  const QuantizedLinear qw = quantize_linear(layer);
  QuantizedTensor qx;
  quantize_tensor(x, qx);

  Matrix got;
  quantized_linear_forward(qx, qw, layer.bias.value, got, /*relu=*/true);

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < out; ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < in; ++k) {
        acc += static_cast<std::int32_t>(qx.row(r)[k]) * qw.row(j)[k];
      }
      acc -= static_cast<std::int64_t>(qx.zero_points[r]) * qw.col_sums[j];
      const float v = std::fmaf(static_cast<float>(acc),
                                qx.scales[r] * qw.scales[j],
                                layer.bias.value.at(0, j));
      const float expected = v > 0.0f ? v : 0.0f;
      ASSERT_EQ(expected, got.at(r, j)) << "row " << r << " col " << j;
    }
  }
}

TEST_F(QuantTest, SpmmQ8MatchesDequantizedSpmmAndIsInvariant) {
  const GraphTensors tensors = generated_tensors(600, 0xA1);
  const Matrix dense = random_dense(tensors.node_count(), 48, 29, 2.0f);
  QuantizedTensor q;
  quantize_tensor(dense, q);

  // Reference semantics: spmm over the dequantized operand, within
  // tolerance (accumulation order differs in the epilogue coefficient).
  Matrix dq;
  dequantize_tensor(q, dq);
  Matrix reference;
  tensors.pred.spmm(dq, reference);
  Matrix out;
  spmm_q8(tensors.pred, q, out);
  ASSERT_EQ(reference.rows(), out.rows());
  ASSERT_EQ(reference.cols(), out.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(reference.data()[i], out.data()[i],
                1e-4f * (1.0f + std::fabs(reference.data()[i])));
  }

  // Bitwise invariance across thread counts and tile widths.
  for (const std::size_t tile : {std::size_t{8}, std::size_t{64}}) {
    for (const int threads : {1, 8}) {
      set_spmm_tile_cols(tile);
      set_kernel_threads(threads);
      Matrix rerun;
      spmm_q8(tensors.pred, q, rerun);
      EXPECT_EQ(out, rerun) << "tile " << tile << " threads " << threads;
    }
  }
}

// The tier's headline contract: int8 logits are bitwise identical across
// thread counts, SpMM tile widths, AND dispatch targets (fp32 is only
// per-target deterministic — FMA contraction differs across targets).
TEST_F(QuantTest, ModelInt8BitwiseAcrossThreadsTilesAndTargets) {
  const GraphTensors tensors = generated_tensors(800, 0xB2);
  GcnModel model(small_config());
  model.set_precision(Precision::kInt8);

  ASSERT_TRUE(set_simd_target(SimdTarget::kScalar));
  const Matrix reference = model.infer(tensors);

  for (const SimdTarget target :
       {SimdTarget::kScalar, SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (!simd_target_available(target)) continue;
    ASSERT_TRUE(set_simd_target(target));
    for (const int threads : {1, 8}) {
      for (const std::size_t tile : {std::size_t{0}, std::size_t{16}}) {
        set_kernel_threads(threads);
        set_spmm_tile_cols(tile);
        const Matrix logits = model.infer(tensors);
        EXPECT_EQ(reference, logits)
            << simd_target_name() << " threads " << threads << " tile "
            << tile;
      }
    }
  }
}

TEST_F(QuantTest, Int8TracksFp32WithinTolerance) {
  const GraphTensors tensors = generated_tensors(800, 0xC3);
  GcnModel model(small_config());
  const Matrix fp32 = model.infer(tensors);
  model.set_precision(Precision::kInt8);
  const Matrix int8 = model.infer(tensors);
  ASSERT_EQ(fp32.rows(), int8.rows());
  ASSERT_EQ(fp32.cols(), int8.cols());
  // Coarse sanity bound on a random-init model (its logits are near zero,
  // so the relative part barely helps). The trained-model accuracy
  // contract is the bench/quant_agreement.cpp gate, not this test.
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_NEAR(fp32.data()[i], int8.data()[i],
                0.2f * (1.0f + std::fabs(fp32.data()[i])));
  }
}

// GCNT_PRECISION unset leaves everything bitwise unchanged: the fp32 path
// must not be perturbed by the int8 machinery existing, or by a model
// that visited the int8 tier and came back.
TEST_F(QuantTest, Fp32PathUnchangedByPrecisionRoundTrip) {
  EXPECT_EQ(resolve_precision(), Precision::kFp32) << "default tier";
  EXPECT_EQ(resolve_precision("int8"), Precision::kInt8);
  EXPECT_EQ(resolve_precision("bogus"), Precision::kFp32)
      << "unknown value falls back to fp32";

  const GraphTensors tensors = generated_tensors(500, 0xD4);
  GcnModel model(small_config());
  const Matrix before = model.infer(tensors);
  model.set_precision(Precision::kInt8);
  (void)model.infer(tensors);
  model.set_precision(Precision::kFp32);
  const Matrix after = model.infer(tensors);
  EXPECT_EQ(before, after);
}

TEST_F(QuantTest, SerializeV2RoundTripReproducesInt8Bits) {
  const GraphTensors tensors = generated_tensors(500, 0xE5);
  GcnModel model(small_config());

  // An fp32 model still writes v1 — byte-identical saves, old readers OK.
  std::ostringstream fp32_stream;
  save_model(model, fp32_stream);
  EXPECT_EQ(fp32_stream.str().substr(0, 13), "gcnt-model v1");

  model.set_precision(Precision::kInt8);
  const Matrix int8_logits = model.infer(tensors);
  std::ostringstream v2_stream;
  save_model(model, v2_stream);
  EXPECT_EQ(v2_stream.str().substr(0, 13), "gcnt-model v2");

  std::istringstream in(v2_stream.str());
  GcnModel loaded = load_model(in);
  EXPECT_EQ(loaded.precision(), Precision::kInt8);
  ASSERT_EQ(loaded.quantized_encoders().size(),
            model.quantized_encoders().size());
  EXPECT_EQ(loaded.infer(tensors), int8_logits)
      << "v2 load must reproduce int8 inference bit-for-bit";

  // The fp32 weights ride along unchanged in v2.
  loaded.set_precision(Precision::kFp32);
  model.set_precision(Precision::kFp32);
  EXPECT_EQ(loaded.infer(tensors), model.infer(tensors));

  // v1 payload still loads (back-compat).
  std::istringstream v1_in(fp32_stream.str());
  GcnModel v1_loaded = load_model(v1_in);
  EXPECT_EQ(v1_loaded.precision(), Precision::kFp32);
  EXPECT_EQ(v1_loaded.infer(tensors), model.infer(tensors));
}

TEST_F(QuantTest, SerializeV2RejectsCorruptQuantSection) {
  GcnModel model(small_config());
  model.set_precision(Precision::kInt8);
  std::ostringstream out;
  save_model(model, out);
  std::string text = out.str();

  // Truncate inside the quant section.
  const std::string::size_type qpos = text.find("qlayer");
  ASSERT_NE(qpos, std::string::npos);
  std::istringstream truncated(text.substr(0, qpos + 10));
  EXPECT_THROW(load_model(truncated), Error);

  // An out-of-range weight code must be rejected.
  const std::string::size_type cut = text.rfind('\n', text.size() - 2);
  std::istringstream bad_code(text.substr(0, cut + 1) + "999\n");
  EXPECT_THROW(load_model(bad_code), Error);
}

// Incremental engine contract: it always computes fp32 (bit-identical to
// its own cache) and counts the downgrade when the model asked for int8.
TEST_F(QuantTest, IncrementalEngineFallsBackToFp32AndCounts) {
  const bool stats_were_enabled = stats_enabled();
  set_stats_enabled(true);
  const GraphTensors tensors = generated_tensors(500, 0xF6);
  GcnModel model(small_config());
  const Matrix fp32_logits = model.infer(tensors);

  model.set_precision(Precision::kInt8);
  Counter& fallbacks = StatsRegistry::instance().counter("quant.fallback");
  const std::uint64_t before = fallbacks.value();
  IncrementalGcnEngine engine(model);
  const Matrix& logits = engine.refresh(tensors);
  EXPECT_EQ(logits, fp32_logits)
      << "incremental path stays fp32 regardless of the model tier";
  EXPECT_EQ(fallbacks.value(), before + 1);
  set_stats_enabled(stats_were_enabled);
}

TEST_F(QuantTest, ShardedEngineFallsBackToFp32AndCounts) {
  const bool stats_were_enabled = stats_enabled();
  set_stats_enabled(true);
  const GraphTensors tensors = generated_tensors(500, 0xA7);
  GcnModel model(small_config());
  const Matrix fp32_logits = model.infer(tensors);

  model.set_precision(Precision::kInt8);
  Counter& fallbacks = StatsRegistry::instance().counter("quant.fallback");
  const std::uint64_t before = fallbacks.value();
  ShardedGcnOptions options;
  options.shards = 3;
  ShardedGcnEngine engine(model, options);
  const Matrix& logits = engine.refresh(tensors);
  EXPECT_EQ(logits, fp32_logits)
      << "sharded path stays fp32 regardless of the model tier";
  EXPECT_GT(fallbacks.value(), before);
  set_stats_enabled(stats_were_enabled);
}

TEST_F(QuantTest, ShardStoreQ8RoundTripMemoryAndDisk) {
  const Matrix block = random_dense(37, 19, 0xB8, 3.0f);
  // Reference: one quantization round-trip — exactly what the q8 store
  // must reproduce (it stores codes, not floats).
  QuantizedTensor q;
  quantize_tensor(block, q);
  Matrix expected;
  dequantize_tensor(q, expected);

  ShardStore memory_store;
  memory_store.set_block_precision(Precision::kInt8);
  memory_store.put(0, 0, block);
  Matrix memory_out;
  memory_store.get(0, 0, memory_out);
  EXPECT_EQ(expected, memory_out);

  ShardStore disk_store;
  disk_store.configure(testing::TempDir() + "gcnt_quant_store");
  disk_store.set_block_precision(Precision::kInt8);
  disk_store.put(0, 0, block);
  Matrix disk_out;
  disk_store.get(0, 0, disk_out);
  EXPECT_EQ(expected, disk_out)
      << "disk round-trip must match the in-memory codes exactly";
  disk_store.clear();
}

// Regression: a workspace reused across graphs of different sizes /
// dimensions must produce the same bits as a fresh workspace, in both
// precision tiers, and settle into zero allocations per steady-state
// graph.
TEST_F(QuantTest, ForwardWorkspaceReuseAcrossDimChange) {
  const GraphTensors small = generated_tensors(300, 0xC9);
  const GraphTensors large = generated_tensors(900, 0xDA);
  GcnModel model(small_config());

  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    model.set_precision(precision);
    ForwardWorkspace fresh_small, fresh_large, reused;
    Matrix expected_small, expected_large, out;
    model.infer(small, fresh_small, expected_small);
    model.infer(large, fresh_large, expected_large);

    // Grow, shrink, grow again through one workspace.
    model.infer(small, reused, out);
    EXPECT_EQ(expected_small, out) << precision_name(precision);
    model.infer(large, reused, out);
    EXPECT_EQ(expected_large, out) << precision_name(precision);
    model.infer(small, reused, out);
    EXPECT_EQ(expected_small, out) << precision_name(precision);

    // After revisiting the larger graph once, further passes over either
    // graph fit in capacity: zero new allocations.
    model.infer(large, reused, out);
    (void)reused.poll_allocations();
    model.infer(large, reused, out);
    model.infer(small, reused, out);
    EXPECT_EQ(reused.poll_allocations(), 0u)
        << precision_name(precision) << ": steady state must not allocate";
  }
}

}  // namespace
}  // namespace gcnt
