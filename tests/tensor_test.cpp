// Dense and sparse tensor kernels, checked against naive references.

#include <gtest/gtest.h>

#include <functional>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gcnt {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
  return m;
}

/// Naive O(mnk) reference for all transpose combinations.
Matrix naive_gemm(const Matrix& a, const Matrix& b, bool ta, bool tb,
                  float alpha) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  Matrix out(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      out.at(i, j) = alpha * static_cast<float>(acc);
    }
  }
  return out;
}

void expect_near(const Matrix& got, const Matrix& want, float tol = 1e-4f) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t r = 0; r < got.rows(); ++r) {
    for (std::size_t c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got.at(r, c), want.at(r, c), tol)
          << "at (" << r << ", " << c << ")";
    }
  }
}

TEST(Matrix, ConstructAndAccess) {
  Matrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FLOAT_EQ(m.at(2, 3), 1.5f);
  m.at(1, 2) = -2.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), -2.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], -2.0f);
}

TEST(Matrix, FillAndScale) {
  Matrix m(2, 2, 3.0f);
  m.scale(0.5f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
  m.fill(-1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), -1.0f);
}

TEST(Matrix, Axpy) {
  Matrix a(2, 2, 1.0f);
  Matrix b(2, 2, 2.0f);
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
  Matrix wrong(3, 2);
  EXPECT_THROW(a.axpy(1.0f, wrong), std::invalid_argument);
}

TEST(Matrix, Dot) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.at(0, 0) = 1.0f;
  a.at(1, 1) = 2.0f;
  b.at(0, 0) = 3.0f;
  b.at(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(a.dot(b), 11.0f);
}

TEST(Matrix, XavierInitBounded) {
  Rng rng(5);
  Matrix m(30, 20);
  m.xavier_init(rng);
  const double bound = std::sqrt(6.0 / (30 + 20 + 1));
  bool any_nonzero = false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound);
    any_nonzero |= m.data()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

struct GemmCase {
  bool ta, tb;
};
class GemmTransposes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTransposes, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(42);
  // Shapes chosen so op(a) is 5x7 and op(b) is 7x3.
  const Matrix a = ta ? random_matrix(7, 5, rng) : random_matrix(5, 7, rng);
  const Matrix b = tb ? random_matrix(3, 7, rng) : random_matrix(7, 3, rng);
  Matrix out;
  gemm(a, b, out, ta, tb, 1.25f);
  expect_near(out, naive_gemm(a, b, ta, tb, 1.25f));
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GemmTransposes,
                         ::testing::Values(GemmCase{false, false},
                                           GemmCase{true, false},
                                           GemmCase{false, true},
                                           GemmCase{true, true}));

TEST(Gemm, BetaAccumulates) {
  Rng rng(7);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix b = random_matrix(4, 4, rng);
  Matrix out(4, 4, 1.0f);
  gemm(a, b, out, false, false, 1.0f, 2.0f);
  Matrix want = naive_gemm(a, b, false, false, 1.0f);
  for (std::size_t i = 0; i < want.size(); ++i) want.data()[i] += 2.0f;
  expect_near(out, want);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix a(2, 3), b(4, 2), out;
  EXPECT_THROW(gemm(a, b, out, false, false), std::invalid_argument);
}

TEST(Coo, AppendGrowsShape) {
  CooMatrix coo;
  coo.add(2, 5, 1.0f);
  EXPECT_EQ(coo.rows, 3u);
  EXPECT_EQ(coo.cols, 6u);
  EXPECT_EQ(coo.nnz(), 1u);
}

TEST(Coo, SparsityReported) {
  CooMatrix coo(100, 100);
  for (std::uint32_t i = 0; i < 100; ++i) coo.add(i, i, 1.0f);
  EXPECT_DOUBLE_EQ(coo.sparsity(), 0.99);
}

TEST(Csr, FromCooBasic) {
  CooMatrix coo(3, 3);
  coo.add(0, 1, 2.0f);
  coo.add(2, 0, 3.0f);
  coo.add(1, 1, -1.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(csr.row_ptr()[1] - csr.row_ptr()[0], 1u);
  EXPECT_EQ(csr.col_index()[csr.row_ptr()[2]], 0u);
}

TEST(Csr, DuplicatesSummed) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(0, 0, 2.5f);
  coo.add(1, 1, 1.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  EXPECT_EQ(csr.nnz(), 2u);
  EXPECT_FLOAT_EQ(csr.values()[0], 3.5f);
}

TEST(Csr, FromCooRejects32BitIndexOverflow) {
  // A declared shape past the 32-bit index range must fail up front with
  // a typed resource error — before any O(rows) allocation happens —
  // instead of silently wrapping the index arithmetic.
  CooMatrix wide_rows;
  wide_rows.rows = std::size_t{1} << 32;
  wide_rows.cols = 4;
  try {
    CsrMatrix::from_coo(wide_rows);
    FAIL() << "expected Error{kResource}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kResource);
  }
  CooMatrix wide_cols;
  wide_cols.rows = 4;
  wide_cols.cols = (std::size_t{1} << 32) + 7;
  try {
    CsrMatrix::from_coo(wide_cols);
    FAIL() << "expected Error{kResource}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kResource);
  }
}

TEST(Csr, FromPartsPreservesRowOrderAndValidates) {
  // from_parts keeps each row's nonzero order exactly as given (the
  // sharded engine's bitwise-identity contract); from_coo would reorder
  // by first occurrence and merge duplicates.
  const CsrMatrix csr = CsrMatrix::from_parts(
      2, 3, {0, 2, 3}, {2, 0, 1}, {5.0f, 1.0f, -2.0f});
  EXPECT_EQ(csr.rows(), 2u);
  EXPECT_EQ(csr.cols(), 3u);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(csr.col_index()[0], 2u);  // descending within the row, kept
  EXPECT_EQ(csr.col_index()[1], 0u);
  EXPECT_FLOAT_EQ(csr.values()[0], 5.0f);
  // Inconsistent arrays are an internal error, not undefined behavior.
  const auto expect_internal = [](const std::function<void()>& fn) {
    try {
      fn();
      FAIL() << "expected Error{kInternal}";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kInternal);
    }
  };
  expect_internal([] {  // row_ptr not monotone
    CsrMatrix::from_parts(2, 3, {0, 2, 1}, {0, 1}, {1.0f, 1.0f});
  });
  expect_internal([] {  // column out of range
    CsrMatrix::from_parts(1, 2, {0, 1}, {2}, {1.0f});
  });
  expect_internal([] {  // col/value length mismatch
    CsrMatrix::from_parts(1, 2, {0, 1}, {0, 1}, {1.0f});
  });
}

TEST(Csr, SpmmMatchesDense) {
  Rng rng(11);
  CooMatrix coo(6, 5);
  Matrix dense_a(6, 5);
  for (int k = 0; k < 12; ++k) {
    const auto r = static_cast<std::uint32_t>(rng.below(6));
    const auto c = static_cast<std::uint32_t>(rng.below(5));
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    coo.add(r, c, v);
    dense_a.at(r, c) += v;  // duplicates accumulate in both forms
  }
  const Matrix x = random_matrix(5, 4, rng);
  Matrix got;
  CsrMatrix::from_coo(coo).spmm(x, got);
  expect_near(got, naive_gemm(dense_a, x, false, false, 1.0f));
}

TEST(Csr, SpmmAlphaBeta) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(1, 1, 1.0f);
  const CsrMatrix identity = CsrMatrix::from_coo(coo);
  Matrix x(2, 2, 1.0f);
  Matrix out(2, 2, 10.0f);
  identity.spmm(x, out, 2.0f, 1.0f);  // out = 2*I*x + out
  EXPECT_FLOAT_EQ(out.at(0, 0), 12.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 12.0f);
}

TEST(Csr, SpmmDimensionMismatchThrows) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  Matrix x(2, 2);  // needs 3 rows
  Matrix out;
  EXPECT_THROW(csr.spmm(x, out), std::invalid_argument);
}

TEST(Csr, SpmmBetaZeroReshapesOutputLikeGemm) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(1, 1, 1.0f);
  const CsrMatrix identity = CsrMatrix::from_coo(coo);
  Matrix x(2, 3, 1.0f);
  // beta == 0 reshapes any output to the result shape, reusing its
  // allocation — same contract as gemm, so a workspace buffer can carry
  // across layers of different width.
  Matrix wrong(4, 7, 0.0f);
  const std::size_t cap = wrong.capacity();
  identity.spmm(x, wrong);
  EXPECT_EQ(wrong.rows(), 2u);
  EXPECT_EQ(wrong.cols(), 3u);
  EXPECT_EQ(wrong.capacity(), cap);  // shrink reuses the allocation
  expect_near(wrong, x);
  // A correctly-shaped output is reused: stale contents are overwritten.
  Matrix reused(2, 3, 99.0f);
  identity.spmm(x, reused);
  expect_near(reused, x);
  // An empty output is allocated to the result shape.
  Matrix fresh;
  identity.spmm(x, fresh);
  expect_near(fresh, x);
  // beta != 0 still validates: the output's existing values are inputs.
  Matrix accum(4, 7, 0.0f);
  EXPECT_THROW(identity.spmm(x, accum, 1.0f, 0.5f), std::invalid_argument);
}

/// Builds a pseudo-random sparse matrix with ~nnz entries.
CsrMatrix random_csr(std::size_t rows, std::size_t cols, std::size_t nnz,
                     Rng& rng) {
  CooMatrix coo(rows, cols);
  for (std::size_t k = 0; k < nnz; ++k) {
    coo.add(static_cast<std::uint32_t>(rng.below(rows)),
            static_cast<std::uint32_t>(rng.below(cols)),
            static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return CsrMatrix::from_coo(coo);
}

TEST(Coo, AddCheckedRejectsOutOfRangeWithoutGrowing) {
  CooMatrix coo(3, 3);
  coo.add_checked(2, 2, 1.0f);  // in range: appended normally
  EXPECT_EQ(coo.nnz(), 1u);
  EXPECT_THROW(coo.add_checked(3, 0, 1.0f), std::out_of_range);
  EXPECT_THROW(coo.add_checked(0, 3, 1.0f), std::out_of_range);
  // The failed appends must not have grown the shape or the storage
  // (plain add() would have silently stretched the matrix to 4 rows).
  EXPECT_EQ(coo.rows, 3u);
  EXPECT_EQ(coo.cols, 3u);
  EXPECT_EQ(coo.nnz(), 1u);
}

TEST(Coo, ReshapeGrowsButNeverShrinks) {
  CooMatrix coo(2, 3);
  coo.add(1, 2, 1.0f);
  coo.reshape(5, 4);
  EXPECT_EQ(coo.rows, 5u);
  EXPECT_EQ(coo.cols, 4u);
  coo.add_checked(4, 3, 1.0f);  // now in range
  EXPECT_THROW(coo.reshape(3, 4), std::invalid_argument);
  EXPECT_THROW(coo.reshape(5, 2), std::invalid_argument);
  coo.reshape(5, 4);  // same shape is a no-op, not a shrink
  EXPECT_EQ(coo.nnz(), 2u);
}

TEST(Csr, SpmmBitwiseIdenticalAcrossTileWidths) {
  Rng rng(41);
  const CsrMatrix csr = random_csr(400, 300, 3000, rng);
  const Matrix x = random_matrix(300, 13, rng);  // odd width: ragged tail
  Matrix untiled;
  csr.spmm(x, untiled);  // default: one tile
  for (const std::size_t tile : {std::size_t{1}, std::size_t{4},
                                 std::size_t{13}, std::size_t{64}}) {
    set_spmm_tile_cols(tile);
    Matrix tiled;
    csr.spmm(x, tiled);
    set_spmm_tile_cols(0);
    EXPECT_EQ(untiled, tiled) << "tile=" << tile;  // bitwise
  }
  // Tiling composed with threading is still bitwise invariant.
  set_spmm_tile_cols(4);
  set_kernel_threads(8);
  Matrix tiled_parallel;
  csr.spmm(x, tiled_parallel);
  set_kernel_threads(0);
  set_spmm_tile_cols(0);
  EXPECT_EQ(untiled, tiled_parallel);
}

TEST(Csr, SpmmRowsMatchesFullSpmmRows) {
  Rng rng(43);
  const CsrMatrix csr = random_csr(500, 200, 4000, rng);
  const Matrix x = random_matrix(200, 9, rng);
  Matrix full;
  csr.spmm(x, full);
  const std::vector<std::uint32_t> subset = {0, 7, 7, 123, 250, 499};
  Matrix compact;
  csr.spmm_rows(subset, x, compact);
  ASSERT_EQ(compact.rows(), subset.size());
  ASSERT_EQ(compact.cols(), full.cols());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = 0; j < full.cols(); ++j) {
      // Bitwise: the compact row must reproduce the whole-graph row.
      EXPECT_EQ(compact.at(i, j), full.at(subset[i], j))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(Csr, SpmmRowsValidatesInputs) {
  Rng rng(47);
  const CsrMatrix csr = random_csr(10, 6, 20, rng);
  const Matrix x = random_matrix(6, 3, rng);
  Matrix out;
  EXPECT_THROW(csr.spmm_rows({10}, x, out), std::out_of_range);
  const Matrix wrong = random_matrix(5, 3, rng);
  EXPECT_THROW(csr.spmm_rows({0}, wrong, out), std::invalid_argument);
}

TEST(Csr, SpmmBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(31);
  const CsrMatrix csr = random_csr(700, 500, 4000, rng);
  const Matrix x = random_matrix(500, 8, rng);
  set_kernel_threads(1);
  Matrix serial;
  csr.spmm(x, serial);
  set_kernel_threads(8);
  Matrix parallel;
  csr.spmm(x, parallel);
  set_kernel_threads(0);
  EXPECT_EQ(serial, parallel);  // bitwise, not approximate
}

TEST(Matrix, GemmBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(37);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const Matrix a = ta ? random_matrix(90, 130, rng)
                          : random_matrix(130, 90, rng);
      const Matrix b = tb ? random_matrix(110, 90, rng)
                          : random_matrix(90, 110, rng);
      set_kernel_threads(1);
      Matrix serial;
      gemm(a, b, serial, ta, tb);
      set_kernel_threads(8);
      Matrix parallel;
      gemm(a, b, parallel, ta, tb);
      set_kernel_threads(0);
      EXPECT_EQ(serial, parallel) << "ta=" << ta << " tb=" << tb;
    }
  }
}

TEST(Csr, TransposeRoundTrip) {
  Rng rng(13);
  CooMatrix coo(7, 4);
  for (int k = 0; k < 10; ++k) {
    coo.add(static_cast<std::uint32_t>(rng.below(7)),
            static_cast<std::uint32_t>(rng.below(4)),
            static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  const CsrMatrix tt = csr.transpose().transpose();
  ASSERT_EQ(tt.rows(), csr.rows());
  ASSERT_EQ(tt.nnz(), csr.nnz());
  // Compare as dense.
  Matrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Matrix a, b;
  csr.spmm(eye, a);
  tt.spmm(eye, b);
  expect_near(a, b);
}

TEST(Csr, TransposeMatchesManual) {
  CooMatrix coo(2, 3);
  coo.add(0, 2, 5.0f);
  coo.add(1, 0, 7.0f);
  const CsrMatrix t = CsrMatrix::from_coo(coo).transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  Matrix x(2, 1);
  x.at(0, 0) = 1.0f;
  x.at(1, 0) = 1.0f;
  Matrix out;
  t.spmm(x, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 5.0f);
}

}  // namespace
}  // namespace gcnt
