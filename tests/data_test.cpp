// Labeling oracle and dataset assembly.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"

namespace gcnt {
namespace {

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

/// Hand-built trap: t is observable only through AND with a 12-wide enable.
Netlist trap_circuit() {
  std::string src = "INPUT(a)\nINPUT(b)\nOUTPUT(easy)\nOUTPUT(gate)\n";
  for (int i = 0; i < 12; ++i) src += "INPUT(e" + std::to_string(i) + ")\n";
  src += "t = XOR(a, b)\neasy = AND(a, b)\n";
  src += "en1 = AND(e0, e1, e2, e3)\nen2 = AND(e4, e5, e6, e7)\n";
  src += "en3 = AND(e8, e9, e10, e11)\nen = AND(en1, en2, en3)\n";
  src += "gate = AND(t, en)\n";
  return read_bench_string(src, "trap");
}

TEST(Labeler, EmpiricalFlagsTrapNode) {
  const Netlist n = trap_circuit();
  LabelerOptions options;
  options.batches = 8;
  options.min_observed_rate = 0.01;
  const auto labels = label_difficult_to_observe(n, options);
  // t is behind the 12-wide enable: observed with prob ~2^-12.
  EXPECT_EQ(labels[by_name(n, "t")], 1);
  // "easy" drives a PO directly.
  EXPECT_EQ(labels[by_name(n, "easy")], 0);
}

TEST(Labeler, SourcesAndSinksNeverPositive) {
  const Netlist n = trap_circuit();
  const auto labels = label_difficult_to_observe(n, LabelerOptions{});
  for (NodeId v : n.primary_inputs()) EXPECT_EQ(labels[v], 0);
  for (NodeId v : n.primary_outputs()) EXPECT_EQ(labels[v], 0);
}

TEST(Labeler, CopOracleAgreesOnTrap) {
  const Netlist n = trap_circuit();
  LabelerOptions options;
  options.oracle = LabelerOptions::Oracle::kCopThreshold;
  options.cop_threshold = 0.01;
  const auto labels = label_difficult_to_observe(n, options);
  EXPECT_EQ(labels[by_name(n, "t")], 1);
  EXPECT_EQ(labels[by_name(n, "easy")], 0);
}

TEST(Labeler, DeterministicForSeed) {
  GeneratorConfig config;
  config.seed = 3;
  config.target_gates = 400;
  const Netlist n = generate_circuit(config);
  LabelerOptions options;
  options.batches = 4;
  const auto a = label_difficult_to_observe(n, options);
  const auto b = label_difficult_to_observe(n, options);
  EXPECT_EQ(a, b);
}

TEST(Dataset, BuildsConsistentRows) {
  GeneratorConfig config;
  config.seed = 9;
  config.target_gates = 600;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.trap_fraction = 0.05;
  LabelerOptions options;
  options.batches = 6;
  const Dataset dataset = make_dataset(generate_circuit(config), options);
  EXPECT_EQ(dataset.positives() + dataset.negatives(),
            dataset.netlist.size());
  for (std::uint32_t v : dataset.positive_rows) {
    EXPECT_EQ(dataset.tensors.labels[v], 1);
  }
  for (std::uint32_t v : dataset.negative_rows) {
    EXPECT_EQ(dataset.tensors.labels[v], 0);
  }
  EXPECT_GT(dataset.positives(), 0u);
  EXPECT_GT(dataset.negatives(), dataset.positives());
}

TEST(Dataset, PositiveRateMatchesPaperShape) {
  // Table 1 reports ~0.64% positives; ours should land within a loose
  // band around that (0.1% .. 4%).
  GeneratorConfig config;
  config.seed = 13;
  config.target_gates = 3000;
  config.primary_inputs = 32;
  config.primary_outputs = 16;
  config.flip_flops = 120;
  config.trap_fraction = 0.02;
  LabelerOptions options;
  options.batches = 6;
  const Dataset dataset = make_dataset(generate_circuit(config), options);
  const double rate = static_cast<double>(dataset.positives()) /
                      static_cast<double>(dataset.netlist.size());
  EXPECT_GT(rate, 0.001);
  EXPECT_LT(rate, 0.04);
}

TEST(Dataset, BalancedRowsContainAllPositives) {
  GeneratorConfig config;
  config.seed = 9;
  config.target_gates = 600;
  config.trap_fraction = 0.05;
  LabelerOptions options;
  options.batches = 6;
  const Dataset dataset = make_dataset(generate_circuit(config), options);
  const auto rows = balanced_rows(dataset, 42);
  EXPECT_EQ(rows.size(), 2 * dataset.positives());
  std::size_t positives = 0;
  for (std::uint32_t r : rows) {
    positives += dataset.tensors.labels[r] == 1 ? 1 : 0;
  }
  EXPECT_EQ(positives, dataset.positives());
  // No duplicate rows.
  auto sorted = rows;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Dataset, BalancedRowsSeedDeterministic) {
  GeneratorConfig config;
  config.seed = 9;
  config.target_gates = 400;
  config.trap_fraction = 0.05;
  LabelerOptions options;
  options.batches = 4;
  const Dataset dataset = make_dataset(generate_circuit(config), options);
  EXPECT_EQ(balanced_rows(dataset, 7), balanced_rows(dataset, 7));
  EXPECT_NE(balanced_rows(dataset, 7), balanced_rows(dataset, 8));
}

TEST(BenchmarkSuite, FourLabeledDesigns) {
  LabelerOptions options;
  options.batches = 2;
  const auto suite = make_benchmark_suite(800, options);
  ASSERT_EQ(suite.size(), 4u);
  for (const Dataset& d : suite) {
    EXPECT_GT(d.positives(), 0u) << d.name();
    EXPECT_FALSE(d.tensors.labels.empty());
  }
  EXPECT_EQ(suite[0].name(), "B1");
  EXPECT_EQ(suite[3].name(), "B4");
}

}  // namespace
}  // namespace gcnt
