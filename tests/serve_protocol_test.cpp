// Wire-protocol codec hardening: round trips, hostile framing bytes, and
// the fd-level frame reader. Every malformed input must surface as a
// typed gcnt::Error (never a crash) — the serve daemon feeds raw network
// bytes straight into this codec.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "common/error.h"
#include "serve/protocol.h"

namespace gcnt::serve {
namespace {

TEST(ServeProtocol, FrameRoundTrip) {
  Frame frame;
  frame.opcode = static_cast<std::uint8_t>(Op::kInfer);
  frame.request_id = 0xdeadbeef;
  frame.body = std::string("payload\0with\0nuls", 17);

  const std::string bytes = encode_frame(frame);
  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  ASSERT_EQ(decode_frame(bytes, decoded, consumed, kind, message),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.opcode, frame.opcode);
  EXPECT_EQ(decoded.request_id, frame.request_id);
  EXPECT_EQ(decoded.body, frame.body);
  EXPECT_FALSE(decoded.is_response());
}

TEST(ServeProtocol, TruncatedPrefixNeedsMore) {
  Frame frame;
  frame.opcode = static_cast<std::uint8_t>(Op::kPing);
  const std::string bytes = encode_frame(frame);
  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  // Every strict prefix of a valid frame is kNeedMore, never an error.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(decode_frame(std::string_view(bytes).substr(0, cut), decoded,
                           consumed, kind, message),
              DecodeResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(ServeProtocol, OversizedLengthIsMalformed) {
  std::string bytes;
  const std::uint32_t huge = kMaxFramePayload + 1;
  bytes.append(reinterpret_cast<const char*>(&huge), 4);
  bytes.append(16, '\0');
  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(decode_frame(bytes, decoded, consumed, kind, message),
            DecodeResult::kMalformed);
  EXPECT_EQ(kind, ErrorKind::kCorrupt);
  EXPECT_NE(message.find("exceeds"), std::string::npos);
}

TEST(ServeProtocol, PayloadShorterThanHeaderIsMalformed) {
  std::string bytes;
  const std::uint32_t tiny = 3;  // < kFrameHeaderBytes
  bytes.append(reinterpret_cast<const char*>(&tiny), 4);
  bytes.append(3, '\0');
  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(decode_frame(bytes, decoded, consumed, kind, message),
            DecodeResult::kMalformed);
  EXPECT_EQ(kind, ErrorKind::kCorrupt);
}

TEST(ServeProtocol, EncodeRejectsOversizedBody) {
  Frame frame;
  frame.body.resize(kMaxFramePayload);  // + header > limit
  try {
    encode_frame(frame);
    FAIL() << "expected Error{kUsage}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
  }
}

TEST(ServeProtocol, WireFieldsRoundTrip) {
  std::string body;
  WireWriter writer(body);
  writer.u8(7);
  writer.u32(0x01020304u);
  writer.u64(0x1122334455667788ull);
  writer.f32(-1.5f);
  writer.str("session-name");
  writer.str({});  // empty strings are legal

  WireReader reader(body);
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.u32(), 0x01020304u);
  EXPECT_EQ(reader.u64(), 0x1122334455667788ull);
  EXPECT_EQ(reader.f32(), -1.5f);
  EXPECT_EQ(reader.str(), "session-name");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.empty());
}

TEST(ServeProtocol, TruncatedBodyThrowsCorrupt) {
  std::string body;
  WireWriter writer(body);
  writer.str("abcdef");
  body.resize(body.size() - 2);  // cut the string short of its length
  WireReader reader(body);
  try {
    reader.str();
    FAIL() << "expected Error{kCorrupt}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  }
  // A string length that itself lies about the remaining bytes.
  std::string lying;
  WireWriter liar(lying);
  liar.u32(1000);  // claims 1000 bytes follow
  lying.append("xy");
  WireReader reader2(lying);
  EXPECT_THROW(reader2.str(), Error);
}

TEST(ServeProtocol, StatusMappingRoundTrips) {
  for (ErrorKind kind :
       {ErrorKind::kIo, ErrorKind::kCorrupt, ErrorKind::kVersion,
        ErrorKind::kResource, ErrorKind::kUsage, ErrorKind::kInternal,
        ErrorKind::kDeadline}) {
    const std::uint8_t status = wire_status(kind);
    EXPECT_NE(status, kStatusOk);
    EXPECT_EQ(error_kind_for_status(status), kind);
  }
}

TEST(ServeProtocol, V2DeadlineRoundTrip) {
  Frame frame;
  frame.opcode = static_cast<std::uint8_t>(Op::kInfer);
  frame.request_id = 77;
  frame.flags = kFrameFlagDeadline;
  frame.deadline_ms = 1500;
  frame.body = "session";

  const std::string bytes = encode_frame(frame);
  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  ASSERT_EQ(decode_frame(bytes, decoded, consumed, kind, message),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_TRUE(decoded.has_deadline());
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.body, "session");
}

TEST(ServeProtocol, V1FrameStillDecodes) {
  // A v1 peer's frame: version byte 1, no flags semantics, no deadline
  // extension. The v2 codec must accept it unchanged.
  Frame frame;
  frame.version = 1;
  frame.opcode = static_cast<std::uint8_t>(Op::kPing);
  frame.request_id = 3;
  const std::string bytes = encode_frame(frame);
  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  ASSERT_EQ(decode_frame(bytes, decoded, consumed, kind, message),
            DecodeResult::kFrame);
  EXPECT_EQ(decoded.version, 1);
  EXPECT_FALSE(decoded.has_deadline());
  EXPECT_EQ(decoded.deadline_ms, 0u);
}

TEST(ServeProtocol, TruncatedDeadlineIsMalformed) {
  // Deadline flag set but the payload stops before the deadline field.
  Frame frame;
  frame.opcode = static_cast<std::uint8_t>(Op::kPing);
  frame.flags = kFrameFlagDeadline;
  frame.deadline_ms = 10;
  std::string bytes = encode_frame(frame);
  // Shrink the payload to exactly the fixed header (drop the 4-byte
  // extension) and patch the length prefix to match.
  bytes.resize(4 + kFrameHeaderBytes);
  const std::uint32_t payload = kFrameHeaderBytes;
  std::memcpy(bytes.data(), &payload, 4);

  Frame decoded;
  std::size_t consumed = 0;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(decode_frame(bytes, decoded, consumed, kind, message),
            DecodeResult::kMalformed);
  EXPECT_EQ(kind, ErrorKind::kCorrupt);
  EXPECT_NE(message.find("deadline"), std::string::npos);
}

TEST(ServeProtocol, ResponseEchoesRequestVersion) {
  Frame v1_request;
  v1_request.version = 1;
  v1_request.opcode = static_cast<std::uint8_t>(Op::kPing);
  v1_request.request_id = 5;
  EXPECT_EQ(make_ok_response(v1_request, {}).version, 1);
  EXPECT_EQ(make_error_response(v1_request, ErrorKind::kUsage, "x").version,
            1);
  Frame v2_request;
  v2_request.opcode = static_cast<std::uint8_t>(Op::kPing);
  EXPECT_EQ(make_ok_response(v2_request, {}).version, kProtocolVersion);
}

TEST(ServeProtocol, BrownoutFlagOnlyOnV2Responses) {
  Frame response;
  response.opcode =
      static_cast<std::uint8_t>(Op::kInfer) | kResponseBit;
  response.flags = kFrameFlagBrownout;
  EXPECT_TRUE(response.is_brownout());
  response.version = 1;
  EXPECT_FALSE(response.is_brownout());
}

TEST(ServeProtocol, ResponseBuilders) {
  Frame request;
  request.opcode = static_cast<std::uint8_t>(Op::kStats);
  request.request_id = 42;

  const Frame ok = make_ok_response(request, "abc");
  EXPECT_TRUE(ok.is_response());
  EXPECT_EQ(ok.request_opcode(), request.opcode);
  EXPECT_EQ(ok.request_id, 42u);
  ASSERT_FALSE(ok.body.empty());
  EXPECT_EQ(static_cast<std::uint8_t>(ok.body[0]), kStatusOk);
  EXPECT_EQ(ok.body.substr(1), "abc");

  const Frame err =
      make_error_response(request, ErrorKind::kResource, "queue full");
  EXPECT_TRUE(err.is_response());
  EXPECT_EQ(err.request_id, 42u);
  WireReader reader(err.body);
  EXPECT_EQ(error_kind_for_status(reader.u8()), ErrorKind::kResource);
  EXPECT_EQ(reader.str(), "queue full");
}

// --- fd-level reader --------------------------------------------------

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    close_write();
    if (fds[0] >= 0) ::close(fds[0]);
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(ServeProtocol, ReadFrameRoundTripAndEof) {
  Pipe pipe;
  Frame frame;
  frame.opcode = static_cast<std::uint8_t>(Op::kLoadSession);
  frame.request_id = 9;
  frame.body = "body bytes";
  write_frame(pipe.fds[1], frame);
  pipe.close_write();

  Frame decoded;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  ASSERT_EQ(read_frame(pipe.fds[0], decoded, kind, message),
            ReadStatus::kFrame);
  EXPECT_EQ(decoded.opcode, frame.opcode);
  EXPECT_EQ(decoded.body, frame.body);
  // Stream ends exactly at a frame boundary: orderly EOF, not an error.
  EXPECT_EQ(read_frame(pipe.fds[0], decoded, kind, message),
            ReadStatus::kEof);
}

TEST(ServeProtocol, ReadFrameTruncatedPrefixIsCorrupt) {
  Pipe pipe;
  const char partial[2] = {0x10, 0x00};  // half a length prefix
  ASSERT_EQ(::write(pipe.fds[1], partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  pipe.close_write();

  Frame decoded;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(read_frame(pipe.fds[0], decoded, kind, message),
            ReadStatus::kError);
  EXPECT_EQ(kind, ErrorKind::kCorrupt);
  EXPECT_NE(message.find("truncated"), std::string::npos);
}

TEST(ServeProtocol, ReadFrameTruncatedPayloadIsCorrupt) {
  Pipe pipe;
  Frame frame;
  frame.opcode = static_cast<std::uint8_t>(Op::kInfer);
  frame.body = "0123456789";
  const std::string bytes = encode_frame(frame);
  ASSERT_EQ(::write(pipe.fds[1], bytes.data(), bytes.size() - 4),
            static_cast<ssize_t>(bytes.size() - 4));
  pipe.close_write();

  Frame decoded;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(read_frame(pipe.fds[0], decoded, kind, message),
            ReadStatus::kError);
  EXPECT_EQ(kind, ErrorKind::kCorrupt);
}

TEST(ServeProtocol, ReadFrameRejectsHostileLengthWithoutAllocating) {
  Pipe pipe;
  const std::uint32_t huge = 0xffffffffu;
  ASSERT_EQ(::write(pipe.fds[1], &huge, 4), 4);
  pipe.close_write();

  Frame decoded;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(read_frame(pipe.fds[0], decoded, kind, message),
            ReadStatus::kError);
  EXPECT_EQ(kind, ErrorKind::kCorrupt);
}

}  // namespace
}  // namespace gcnt::serve
