// OPI flows: baseline COP-greedy and the iterative GCN flow with impact
// evaluation. A small GCN is trained once and shared across tests.

#include <gtest/gtest.h>

#include <memory>

#include "atpg/atpg.h"
#include "common/metrics.h"
#include "cop/cop.h"
#include "data/dataset.h"
#include "dft/baseline_opi.h"
#include "dft/gcn_opi.h"
#include "dft/impact.h"
#include "gcn/trainer.h"
#include "gen/generator.h"

namespace gcnt {
namespace {

GeneratorConfig test_design(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = 1200;
  config.primary_inputs = 24;
  config.primary_outputs = 12;
  config.flip_flops = 48;
  config.trap_fraction = 0.04;
  config.trap_enable_width = 9;
  return config;
}

GcnConfig small_model_config() {
  GcnConfig config;
  config.depth = 2;
  config.embed_dims = {8, 16};
  config.fc_dims = {16, 16};
  config.seed = 4242;
  return config;
}

/// Shared trained model + dataset (training once keeps the suite fast).
class GcnOpiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LabelerOptions labeler;
    labeler.batches = 8;
    dataset_ = new Dataset(
        make_dataset(generate_circuit(test_design(501)), labeler));
    model_ = new GcnModel(small_model_config());
    TrainerOptions options;
    options.epochs = 150;
    options.learning_rate = 1e-2f;
    options.positive_class_weight = 8.0f;
    options.eval_interval = 100;
    Trainer trainer(*model_, options);
    const TrainGraph data{&dataset_->tensors, {}};
    trainer.train({data}, nullptr);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete model_;
    dataset_ = nullptr;
    model_ = nullptr;
  }

  static Dataset* dataset_;
  static GcnModel* model_;
};

Dataset* GcnOpiTest::dataset_ = nullptr;
GcnModel* GcnOpiTest::model_ = nullptr;

TEST(BaselineOpi, ClearsBelowThresholdNodes) {
  Netlist n = generate_circuit(test_design(301));
  BaselineOpiOptions options;
  options.observability_threshold = 0.01;
  const auto result = run_baseline_opi(n, options);
  EXPECT_GT(result.inserted.size(), 0u);
  EXPECT_EQ(result.remaining_below_threshold, 0u);

  // Post-condition: nothing (insertable) is below the threshold anymore.
  const auto cop = compute_cop(n);
  for (NodeId v = 0; v < n.size(); ++v) {
    if (is_sink(n.type(v)) || n.type(v) == CellType::kInput) continue;
    bool has_op = false;
    for (NodeId g : n.fanouts(v)) {
      has_op |= n.type(g) == CellType::kObserve;
    }
    if (!has_op) {
      EXPECT_GE(cop.observability[v], options.observability_threshold)
          << "node " << v;
    }
  }
}

TEST(BaselineOpi, NoCandidatesMeansNoInsertions) {
  // A shallow, fully observable circuit needs nothing.
  GeneratorConfig config;
  config.seed = 11;
  config.target_gates = 150;
  config.trap_fraction = 0.0;
  config.target_depth = 6;
  Netlist n = generate_circuit(config);
  BaselineOpiOptions options;
  options.observability_threshold = 1e-6;
  const auto result = run_baseline_opi(n, options);
  EXPECT_TRUE(result.inserted.empty());
  EXPECT_EQ(result.rounds, 0u);
}

TEST(BaselineOpi, ImprovesFaultCoverage) {
  Netlist n = generate_circuit(test_design(303));
  AtpgOptions atpg;
  atpg.max_random_batches = 8;
  atpg.podem.backtrack_limit = 8;
  atpg.podem.implication_limit = 64;
  const auto before = run_atpg(n, atpg);
  run_baseline_opi(n, BaselineOpiOptions{});
  const auto after = run_atpg(n, atpg);
  EXPECT_GE(after.fault_coverage(), before.fault_coverage());
}

TEST_F(GcnOpiTest, TrainedModelBeatsChanceOnItsDesign) {
  const auto probabilities =
      model_->predict_positive_probability(dataset_->tensors);
  std::vector<std::int32_t> predictions(probabilities.size());
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    predictions[i] = probabilities[i] >= 0.5f ? 1 : 0;
  }
  const auto cm = evaluate_binary(predictions, dataset_->tensors.labels);
  EXPECT_GT(cm.recall(), 0.5);
  EXPECT_GT(cm.precision(), 0.2);
}

TEST_F(GcnOpiTest, ImpactEvaluatorRanksConeCoverage) {
  const Netlist& n = dataset_->netlist;
  const auto predictions_prob =
      model_->predict_positive_probability(dataset_->tensors);
  std::vector<std::int32_t> predictions(predictions_prob.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    predictions[i] = predictions_prob[i] >= 0.5f ? 1 : 0;
  }
  ImpactEvaluator evaluator({model_}, n, dataset_->tensors, dataset_->scoap,
                            dataset_->levels);
  // Impact of a positive node is at least 0 in the common case and at
  // most the cone positive count.
  int evaluated = 0;
  for (NodeId v = 0; v < n.size() && evaluated < 12; ++v) {
    if (predictions[v] != 1 || is_sink(n.type(v))) continue;
    const int impact = evaluator.impact_of(v, predictions, 64);
    auto cone = n.fanin_cone(v, 64);
    cone.push_back(v);
    int cone_positives = 0;
    for (NodeId u : cone) cone_positives += predictions[u];
    EXPECT_LE(impact, cone_positives);
    ++evaluated;
  }
  EXPECT_GT(evaluated, 0);
}

TEST_F(GcnOpiTest, IterativeFlowReducesPositivePredictions) {
  Netlist working = dataset_->netlist;  // copy; flow mutates
  GcnOpiOptions options;
  options.max_iterations = 6;
  options.insert_fraction = 0.4;
  const auto result = run_gcn_opi(working, {model_}, options);
  EXPECT_GT(result.inserted.size(), 0u);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_EQ(working.observe_points().size(), result.inserted.size());
  // The flow either converged (no positives) or at least shrank the
  // positive population substantially versus the start.
  const auto start_positives = dataset_->positives();
  EXPECT_LT(result.final_positive_predictions, start_positives * 2);
  EXPECT_TRUE(working.validate().empty());
}

TEST_F(GcnOpiTest, FlowImprovesObservabilityOfLabeledPositives) {
  Netlist working = dataset_->netlist;
  GcnOpiOptions options;
  options.max_iterations = 6;
  options.insert_fraction = 0.5;
  run_gcn_opi(working, {model_}, options);

  const auto cop_before = compute_cop(dataset_->netlist);
  const auto cop_after = compute_cop(working);
  double before = 0.0, after = 0.0;
  for (std::uint32_t v : dataset_->positive_rows) {
    before += cop_before.observability[v];
    after += cop_after.observability[v];
  }
  EXPECT_GT(after, before);  // mean observability of true positives rose
}

}  // namespace
}  // namespace gcnt
