// Parser robustness: randomly mutated netlist text must never crash or
// corrupt — every malformed input surfaces as std::runtime_error, and
// anything accepted must be structurally valid.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"

namespace gcnt {
namespace {

std::string base_bench() {
  GeneratorConfig config;
  config.seed = 1234;
  config.target_gates = 120;
  config.primary_inputs = 8;
  config.primary_outputs = 4;
  config.flip_flops = 4;
  return write_bench_string(generate_circuit(config));
}

std::string base_verilog() {
  GeneratorConfig config;
  config.seed = 1234;
  config.target_gates = 120;
  config.primary_inputs = 8;
  config.primary_outputs = 4;
  config.flip_flops = 4;
  return write_verilog_string(generate_circuit(config));
}

/// Applies one random text mutation (delete / duplicate / corrupt a span).
std::string mutate(const std::string& text, Rng& rng) {
  if (text.empty()) return text;
  std::string out = text;
  const std::size_t pos = rng.below(out.size());
  const std::size_t span = 1 + rng.below(24);
  switch (rng.below(4)) {
    case 0:  // delete span
      out.erase(pos, span);
      break;
    case 1:  // duplicate span
      out.insert(pos, out.substr(pos, span));
      break;
    case 2: {  // overwrite with noise
      static const char noise[] = "(),=# \nXYZ09";
      for (std::size_t i = pos; i < std::min(out.size(), pos + span); ++i) {
        out[i] = noise[rng.below(sizeof(noise) - 1)];
      }
      break;
    }
    default:  // swap two characters
      if (out.size() > 1) {
        std::swap(out[pos], out[rng.below(out.size())]);
      }
      break;
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, BenchNeverCrashes) {
  Rng rng(GetParam());
  std::string text = base_bench();
  for (int round = 0; round < 40; ++round) {
    text = mutate(text, rng);
    try {
      const Netlist parsed = read_bench_string(text, "fuzz");
      // Accepted input must produce an internally consistent graph (no
      // out-of-range edges; cones and orders must not crash).
      for (NodeId v = 0; v < parsed.size(); ++v) {
        for (NodeId u : parsed.fanins(v)) ASSERT_LT(u, parsed.size());
      }
      (void)parsed.validate();
    } catch (const std::runtime_error&) {
      // Expected for malformed text.
    }
  }
}

TEST_P(ParserFuzz, VerilogNeverCrashes) {
  Rng rng(GetParam() * 77 + 5);
  std::string text = base_verilog();
  for (int round = 0; round < 40; ++round) {
    text = mutate(text, rng);
    try {
      const Netlist parsed = read_verilog_string(text, "fuzz");
      for (NodeId v = 0; v < parsed.size(); ++v) {
        for (NodeId u : parsed.fanins(v)) ASSERT_LT(u, parsed.size());
      }
      (void)parsed.validate();
    } catch (const std::runtime_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gcnt
