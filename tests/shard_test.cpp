// Sharded out-of-core execution (graph/partition.h + gcn/shard.h): the
// equivalence suite pinning the bitwise-identity claim — sharded logits
// must equal the monolithic GcnModel::infer and IncrementalGcnEngine
// results for every shard count, halo depth, reorder policy, and spill
// mode — plus partition invariant tests (disjoint cover, exact D-hop halo
// closure, owner/halo bijection, extend-after-append) and spill-store
// durability tests (artifact round-trip, corruption rejection,
// kill-mid-spill recovery). Registered whole-binary at GCNT_THREADS 1 and
// 8 (tests/CMakeLists.txt), mirroring the serve suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/artifact.h"
#include "common/error.h"
#include "common/fault_inject.h"
#include "gcn/graph_tensors.h"
#include "gcn/incremental.h"
#include "gcn/model.h"
#include "gcn/shard.h"
#include "gen/generator.h"
#include "graph/partition.h"
#include "netlist/netlist.h"
#include "scoap/scoap.h"

namespace gcnt {
namespace {

Netlist test_netlist(std::uint64_t seed, std::size_t gates = 2000) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = gates;
  config.primary_inputs = 30;
  config.primary_outputs = 12;
  config.flip_flops = 32;
  return generate_circuit(config);
}

GcnConfig small_config(int depth = 3) {
  GcnConfig config;
  config.depth = depth;
  config.embed_dims = {8, 12, 16};
  config.embed_dims.resize(static_cast<std::size_t>(depth));
  config.fc_dims = {16};
  config.seed = 77;
  return config;
}

std::vector<NodeId> op_targets(const Netlist& netlist, std::size_t count,
                               std::size_t skip = 0) {
  std::vector<NodeId> targets;
  std::size_t seen = 0;
  for (NodeId v = 0; v < netlist.size() && targets.size() < count; ++v) {
    const CellType t = netlist.type(v);
    if (is_sink(t) || t == CellType::kInput) continue;
    if (seen++ < skip) continue;
    targets.push_back(v);
  }
  return targets;
}

/// Applies OP insertions exactly as run_gcn_opi does and rebuilds the CSR
/// forms; records the dirty seeds into `tracker`.
void insert_ops(Netlist& netlist, GraphTensors& tensors, ScoapMeasures& scoap,
                std::vector<std::uint32_t>& levels,
                const std::vector<NodeId>& targets, DirtyConeTracker& tracker) {
  for (const NodeId target : targets) {
    const NodeId op = netlist.insert_observe_point(target);
    update_observability_after_observe(netlist, target, scoap);
    levels.resize(netlist.size(), 0);
    levels[op] = levels[target] + 1;
    const std::vector<NodeId> cone = netlist.fanin_cone(target);
    std::vector<NodeId> changed_rows;
    append_observe_point(tensors, netlist, target, op, scoap, cone,
                         &changed_rows);
    tracker.record_new_node(op);
    tracker.record_edge(target, op);
    for (NodeId v : changed_rows) tracker.record_feature(v);
  }
  tensors.rebuild_csr();
}

ErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a gcnt::Error";
  return ErrorKind::kInternal;
}

// ---------------------------------------------------------------------------
// GraphPartition invariants

TEST(GraphPartition, DisjointCoverWithExactHalo) {
  const Netlist netlist = test_netlist(21, 600);
  const GraphTensors tensors = build_graph_tensors(netlist);
  for (const int halo : {1, 2}) {
    PartitionOptions options;
    options.shards = 4;
    options.halo = halo;
    const GraphPartition partition =
        GraphPartition::build(tensors.pred, tensors.succ, options);
    ASSERT_EQ(partition.shard_count(), 4u);
    ASSERT_EQ(partition.row_count(), tensors.node_count());
    // validate() checks the disjoint exhaustive cover, the exact D-hop
    // BFS closure (list and distances), and the recv regrouping.
    partition.validate(tensors.pred, tensors.succ);

    std::size_t owned = 0;
    for (std::size_t k = 0; k < partition.shard_count(); ++k) {
      const Shard& shard = partition.shard(k);
      owned += shard.owners.size();
      // Every fanin/fanout of an owner that is not owned here must be in
      // the halo (the D >= 1 closure property the compute rounds rely on).
      for (const std::uint32_t row : shard.owners) {
        const auto check_neighbors = [&](const CsrMatrix& adjacency) {
          const auto& ptr = adjacency.row_ptr();
          const auto& cols = adjacency.col_index();
          for (std::uint32_t e = ptr[row]; e < ptr[row + 1]; ++e) {
            if (partition.owner_of(cols[e]) != k) {
              EXPECT_TRUE(std::binary_search(shard.halo.begin(),
                                             shard.halo.end(), cols[e]));
            }
          }
        };
        check_neighbors(tensors.pred);
        check_neighbors(tensors.succ);
      }
    }
    EXPECT_EQ(owned, tensors.node_count());
  }
}

TEST(GraphPartition, OwnerHaloBijectionRoundTrip) {
  const Netlist netlist = test_netlist(22, 400);
  const GraphTensors tensors = build_graph_tensors(netlist);
  PartitionOptions options;
  options.shards = 3;
  options.halo = 2;
  const GraphPartition partition =
      GraphPartition::build(tensors.pred, tensors.succ, options);
  for (std::size_t k = 0; k < partition.shard_count(); ++k) {
    const Shard& shard = partition.shard(k);
    // owners and halo are disjoint ascending lists; their merge (the
    // shard's active set) maps global -> local -> global losslessly.
    std::vector<std::uint32_t> active;
    std::merge(shard.owners.begin(), shard.owners.end(), shard.halo.begin(),
               shard.halo.end(), std::back_inserter(active));
    ASSERT_TRUE(std::is_sorted(active.begin(), active.end()));
    ASSERT_TRUE(std::adjacent_find(active.begin(), active.end()) ==
                active.end());
    for (std::size_t local = 0; local < active.size(); ++local) {
      const auto it = std::lower_bound(active.begin(), active.end(),
                                       active[local]);
      EXPECT_EQ(static_cast<std::size_t>(it - active.begin()), local);
    }
    // recv groups partition the halo exactly.
    std::vector<std::uint32_t> regrouped;
    for (const ShardRecv& recv : shard.recv) {
      for (const std::uint32_t row : recv.rows) regrouped.push_back(row);
    }
    std::sort(regrouped.begin(), regrouped.end());
    EXPECT_EQ(regrouped, shard.halo);
  }
}

TEST(GraphPartition, SingleShardHasEmptyHalo) {
  const Netlist netlist = test_netlist(23, 300);
  const GraphTensors tensors = build_graph_tensors(netlist);
  PartitionOptions options;
  options.shards = 1;
  options.halo = 2;
  const GraphPartition partition =
      GraphPartition::build(tensors.pred, tensors.succ, options);
  partition.validate(tensors.pred, tensors.succ);
  EXPECT_EQ(partition.shard(0).owners.size(), tensors.node_count());
  EXPECT_TRUE(partition.shard(0).halo.empty());
  EXPECT_EQ(partition.total_halo_rows(), 0u);
}

TEST(GraphPartition, ByKeyChunksTheSortedOrder) {
  const Netlist netlist = test_netlist(24, 500);
  const GraphTensors tensors = build_graph_tensors(netlist);
  // Key rows by logic level (feature column 0): each shard should hold a
  // band of topological depth.
  std::vector<float> key(tensors.node_count());
  for (std::uint32_t row = 0; row < key.size(); ++row) {
    key[row] = tensors.features.at(tensors.node_of(row), 0);
  }
  PartitionOptions options;
  options.shards = 4;
  options.halo = 1;
  options.strategy = PartitionStrategy::kByKey;
  options.order_key = &key;
  const GraphPartition partition =
      GraphPartition::build(tensors.pred, tensors.succ, options);
  partition.validate(tensors.pred, tensors.succ);
  float previous_max = -1e30f;
  for (std::size_t k = 0; k < partition.shard_count(); ++k) {
    float lo = 1e30f;
    float hi = -1e30f;
    for (const std::uint32_t row : partition.shard(k).owners) {
      lo = std::min(lo, key[row]);
      hi = std::max(hi, key[row]);
    }
    EXPECT_GE(lo, previous_max - 1e-6f) << "shard " << k;
    previous_max = hi;
  }
}

TEST(GraphPartition, RejectsBadOptions) {
  const Netlist netlist = test_netlist(25, 100);
  const GraphTensors tensors = build_graph_tensors(netlist);
  PartitionOptions options;
  options.shards = 0;
  EXPECT_EQ(kind_of([&] {
              GraphPartition::build(tensors.pred, tensors.succ, options);
            }),
            ErrorKind::kUsage);
  options.shards = 2;
  options.halo = 0;
  EXPECT_EQ(kind_of([&] {
              GraphPartition::build(tensors.pred, tensors.succ, options);
            }),
            ErrorKind::kUsage);
  options.halo = 1;
  options.strategy = PartitionStrategy::kByKey;  // no key provided
  EXPECT_EQ(kind_of([&] {
              GraphPartition::build(tensors.pred, tensors.succ, options);
            }),
            ErrorKind::kUsage);
}

TEST(GraphPartition, ExtendFollowsAppendedRowsExactly) {
  Netlist netlist = test_netlist(26, 800);
  GraphTensors tensors = build_graph_tensors(netlist);
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  PartitionOptions options;
  options.shards = 4;
  options.halo = 2;
  GraphPartition partition =
      GraphPartition::build(tensors.pred, tensors.succ, options);

  DirtyConeTracker tracker;
  const std::vector<NodeId> targets = op_targets(netlist, 12);
  insert_ops(netlist, tensors, scoap, levels, targets, tracker);

  const std::vector<std::size_t> affected =
      partition.extend(tensors.pred, tensors.succ);
  EXPECT_FALSE(affected.empty());
  EXPECT_TRUE(std::is_sorted(affected.begin(), affected.end()));
  // After extend the full invariant set must hold again — including the
  // exact-closure property for shards whose halo changed through paths
  // crossing the appended nodes.
  ASSERT_EQ(partition.row_count(), tensors.node_count());
  partition.validate(tensors.pred, tensors.succ);
  // An observe point's only fanin is its target, so it joins the
  // target's shard.
  for (const NodeId target : targets) {
    const auto& fanouts = netlist.fanouts(target);
    for (const NodeId w : fanouts) {
      if (netlist.type(w) == CellType::kObserve) {
        EXPECT_EQ(partition.owner_of(w), partition.owner_of(target));
      }
    }
  }
}

TEST(GraphPartition, ExtendWithZeroAppendedRows) {
  const Netlist netlist = test_netlist(27, 500);
  const GraphTensors tensors = build_graph_tensors(netlist);
  PartitionOptions options;
  options.shards = 3;
  options.halo = 2;
  GraphPartition partition =
      GraphPartition::build(tensors.pred, tensors.succ, options);
  std::vector<std::vector<std::uint32_t>> owners_before, halo_before;
  for (std::size_t k = 0; k < partition.shard_count(); ++k) {
    owners_before.push_back(partition.shard(k).owners);
    halo_before.push_back(partition.shard(k).halo);
  }
  // Extend with nothing appended: a no-op that must touch no shard.
  const std::vector<std::size_t> affected =
      partition.extend(tensors.pred, tensors.succ);
  EXPECT_TRUE(affected.empty());
  EXPECT_EQ(partition.row_count(), tensors.node_count());
  for (std::size_t k = 0; k < partition.shard_count(); ++k) {
    EXPECT_EQ(partition.shard(k).owners, owners_before[k]);
    EXPECT_EQ(partition.shard(k).halo, halo_before[k]);
  }
  partition.validate(tensors.pred, tensors.succ);
}

/// Rows within `hops` BFS steps of `start` over the pred+succ union.
std::vector<std::uint32_t> neighborhood(const CsrMatrix& pred,
                                        const CsrMatrix& succ,
                                        std::uint32_t start, int hops) {
  std::vector<std::uint32_t> frontier{start};
  std::vector<std::uint32_t> seen{start};
  for (int d = 0; d < hops; ++d) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t row : frontier) {
      const auto expand = [&](const CsrMatrix& adjacency) {
        const auto& ptr = adjacency.row_ptr();
        const auto& cols = adjacency.col_index();
        for (std::uint32_t e = ptr[row]; e < ptr[row + 1]; ++e) {
          if (std::find(seen.begin(), seen.end(), cols[e]) == seen.end()) {
            seen.push_back(cols[e]);
            next.push_back(cols[e]);
          }
        }
      };
      expand(pred);
      expand(succ);
    }
    frontier = std::move(next);
  }
  return seen;
}

TEST(GraphPartition, ExtendAppendTouchingNoExistingHalo) {
  Netlist netlist = test_netlist(28, 900);
  GraphTensors tensors = build_graph_tensors(netlist);
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  PartitionOptions options;
  options.shards = 2;
  options.halo = 2;
  GraphPartition partition =
      GraphPartition::build(tensors.pred, tensors.succ, options);

  // An OP target deep inside shard 0: everything within halo+1 hops is
  // shard-0-owned, so the appended OP row (one hop from the target) can
  // reach no shard-1 row within the halo depth.
  NodeId target = kInvalidNode;
  for (const NodeId v : op_targets(netlist, 400)) {
    if (partition.owner_of(v) != 0) continue;
    bool interior = true;
    for (const std::uint32_t row :
         neighborhood(tensors.pred, tensors.succ, v, options.halo + 1)) {
      if (partition.owner_of(row) != 0) {
        interior = false;
        break;
      }
    }
    if (interior) {
      target = v;
      break;
    }
  }
  ASSERT_NE(target, kInvalidNode) << "no interior target found in shard 0";

  const std::vector<std::uint32_t> owners1_before =
      partition.shard(1).owners;
  const std::vector<std::uint32_t> halo1_before = partition.shard(1).halo;

  DirtyConeTracker tracker;
  insert_ops(netlist, tensors, scoap, levels, {target}, tracker);
  const std::vector<std::size_t> affected =
      partition.extend(tensors.pred, tensors.succ);
  // Only the owning shard rebuilds; the untouched shard keeps its exact
  // owner and halo lists (the incremental-extend contract).
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], 0u);
  EXPECT_EQ(partition.shard(1).owners, owners1_before);
  EXPECT_EQ(partition.shard(1).halo, halo1_before);
  EXPECT_EQ(
      partition.owner_of(static_cast<std::uint32_t>(netlist.size() - 1)),
      0u);
  partition.validate(tensors.pred, tensors.succ);
}

// ---------------------------------------------------------------------------
// Sharded forward: bitwise identity vs the monolithic model

TEST(ShardedForward, BitIdenticalAcrossShardAndHaloSweep) {
  const Netlist netlist = test_netlist(31);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnModel model(small_config());
  const Matrix reference = model.infer(tensors);
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const int halo : {1, 2}) {
      ShardedGcnOptions options;
      options.shards = shards;
      options.halo = halo;
      ShardedGcnEngine engine(model, options);
      engine.refresh(tensors);
      EXPECT_EQ(engine.logits(), reference)
          << "shards=" << shards << " halo=" << halo;
      engine.partition().validate(tensors.pred, tensors.succ);
      EXPECT_TRUE(engine.last_was_full());
    }
  }
}

TEST(ShardedForward, BitIdenticalUnderRcmReorder) {
  set_graph_reorder(GraphReorder::kRcm);
  const Netlist netlist = test_netlist(32);
  const GraphTensors tensors = build_graph_tensors(netlist);
  ASSERT_TRUE(tensors.reordered());
  GcnModel model(small_config());
  const Matrix reference = model.infer(tensors);
  for (const std::size_t shards : {2u, 4u}) {
    for (const int halo : {1, 2}) {
      ShardedGcnOptions options;
      options.shards = shards;
      options.halo = halo;
      ShardedGcnEngine engine(model, options);
      engine.refresh(tensors);
      EXPECT_EQ(engine.logits(), reference)
          << "shards=" << shards << " halo=" << halo;
    }
  }
  reset_graph_reorder();
}

TEST(ShardedForward, ByKeyStrategyIsIdenticalToo) {
  const Netlist netlist = test_netlist(33, 1000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnModel model(small_config());
  const Matrix reference = model.infer(tensors);
  ShardedGcnOptions options;
  options.shards = 3;
  options.halo = 2;
  options.strategy = PartitionStrategy::kByKey;
  ShardedGcnEngine engine(model, options);
  engine.refresh(tensors);
  EXPECT_EQ(engine.logits(), reference);
}

TEST(ShardedForward, SpillToDiskIsIdenticalAndEnveloped) {
  const Netlist netlist = test_netlist(34, 1000);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnModel model(small_config());
  const Matrix reference = model.infer(tensors);
  ShardedGcnOptions options;
  options.shards = 4;
  options.halo = 1;
  options.spill_dir = testing::TempDir() + "gcnt_shard_spill";
  ShardedGcnEngine engine(model, options);
  engine.refresh(tensors);
  EXPECT_EQ(engine.logits(), reference);
  EXPECT_TRUE(engine.store().on_disk());
  EXPECT_GT(engine.store().block_count(), 0u);
  // Every spilled block is a checksummed artifact (common/artifact.h).
  EXPECT_TRUE(is_artifact_file(engine.store().block_path(1, 0)));
}

// ---------------------------------------------------------------------------
// Sharded incremental updates: the OPI dirty-cone path

TEST(ShardedIncremental, MatchesMonolithicAcrossInsertionBatches) {
  Netlist netlist = test_netlist(41);
  GraphTensors tensors = build_graph_tensors(netlist);
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  const GcnConfig config = small_config();
  GcnModel model(config);

  ShardedGcnOptions options;
  options.shards = 3;
  options.halo = 2;
  // Depth-3 dirty cones on a graph this small exceed the default 25%
  // fallback fraction; raise it so the updates exercise the incremental
  // path rather than degenerating to full forwards.
  options.full_fallback_fraction = 0.9;
  ShardedGcnEngine sharded(model, options);
  IncrementalGcnEngine monolithic(model, IncrementalGcnOptions{0.9});
  sharded.refresh(tensors);
  monolithic.refresh(tensors);
  ASSERT_EQ(sharded.logits(), monolithic.logits());

  std::size_t skip = 0;
  for (const std::size_t batch : {1u, 5u, 16u}) {
    DirtyConeTracker tracker;
    const std::vector<NodeId> targets = op_targets(netlist, batch, skip);
    skip += 40;
    ASSERT_EQ(targets.size(), batch);
    insert_ops(netlist, tensors, scoap, levels, targets, tracker);
    const std::vector<NodeId> dirty = tracker.affected(tensors, config.depth);
    sharded.update(tensors, dirty);
    monolithic.update(tensors, dirty);
    EXPECT_FALSE(sharded.last_was_full()) << "batch=" << batch;
    EXPECT_EQ(sharded.last_dirty_rows(), dirty.size());
    EXPECT_EQ(sharded.logits(), monolithic.logits()) << "batch=" << batch;
    EXPECT_EQ(sharded.logits(), model.infer(tensors)) << "batch=" << batch;
    sharded.partition().validate(tensors.pred, tensors.succ);
  }
}

TEST(ShardedIncremental, RcmAndSpillTogetherStayIdentical) {
  set_graph_reorder(GraphReorder::kRcm);
  Netlist netlist = test_netlist(42);
  GraphTensors tensors = build_graph_tensors(netlist);
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  const GcnConfig config = small_config();
  GcnModel model(config);

  ShardedGcnOptions options;
  options.shards = 4;
  options.halo = 1;
  options.spill_dir = testing::TempDir() + "gcnt_shard_spill_rcm";
  options.full_fallback_fraction = 0.9;
  ShardedGcnEngine engine(model, options);
  engine.refresh(tensors);

  std::size_t skip = 10;
  for (const std::size_t batch : {2u, 8u}) {
    DirtyConeTracker tracker;
    const std::vector<NodeId> targets = op_targets(netlist, batch, skip);
    skip += 30;
    insert_ops(netlist, tensors, scoap, levels, targets, tracker);
    const std::vector<NodeId> dirty = tracker.affected(tensors, config.depth);
    engine.update(tensors, dirty);
    EXPECT_FALSE(engine.last_was_full());
    EXPECT_EQ(engine.logits(), model.infer(tensors)) << "batch=" << batch;
  }
  reset_graph_reorder();
}

TEST(ShardedIncremental, OversizedDirtySetFallsBackToFullForward) {
  const Netlist netlist = test_netlist(43, 500);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnModel model(small_config());
  ShardedGcnEngine engine(model, ShardedGcnOptions{});
  engine.refresh(tensors);
  std::vector<NodeId> all(tensors.node_count());
  for (NodeId v = 0; v < all.size(); ++v) all[v] = v;
  engine.update(tensors, all);
  EXPECT_TRUE(engine.last_was_full());
  EXPECT_EQ(engine.logits(), model.infer(tensors));
}

// ---------------------------------------------------------------------------
// ShardStore durability

TEST(ShardStore, MemoryRoundTrip) {
  ShardStore store;
  Matrix block(3, 5);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      block.at(r, c) = static_cast<float>(r * 5 + c) * 0.25f;
    }
  }
  store.put(2, 1, block);
  store.put_export(2, 1, 0, block);
  EXPECT_EQ(store.block_count(), 2u);
  Matrix out;
  store.get(2, 1, out);
  EXPECT_EQ(out, block);
  store.get_export(2, 1, 0, out);
  EXPECT_EQ(out, block);
  EXPECT_EQ(kind_of([&] { store.get(3, 0, out); }), ErrorKind::kInternal);
  store.clear();
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(ShardStore, DiskRoundTripUsesTheArtifactEnvelope) {
  ShardStore store;
  store.configure(testing::TempDir() + "gcnt_shard_store");
  Matrix block(4, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      block.at(r, c) = static_cast<float>(r) - static_cast<float>(c) * 0.5f;
    }
  }
  store.put(1, 2, block);
  EXPECT_TRUE(is_artifact_file(store.block_path(1, 2)));
  Matrix out;
  store.get(1, 2, out);
  EXPECT_EQ(out, block);
  // Missing blocks are an I/O error, not silence.
  EXPECT_EQ(kind_of([&] { store.get(1, 3, out); }), ErrorKind::kIo);
  store.clear();
  EXPECT_EQ(kind_of([&] { store.get(1, 2, out); }), ErrorKind::kIo);
}

TEST(ShardStore, CorruptedBlockIsRejected) {
  ShardStore store;
  store.configure(testing::TempDir() + "gcnt_shard_corrupt");
  Matrix block(2, 2);
  block.at(0, 0) = 1.0f;
  block.at(1, 1) = 2.0f;
  store.put(1, 0, block);
  // Flip one payload byte behind the envelope's back.
  const std::string path = store.block_path(1, 0);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);
  Matrix out;
  EXPECT_EQ(kind_of([&] { store.get(1, 0, out); }), ErrorKind::kCorrupt);
  store.clear();
}

TEST(ShardStore, KillMidSpillLeavesThePreviousBlock) {
  ShardStore store;
  store.configure(testing::TempDir() + "gcnt_shard_kill");
  Matrix original(2, 3);
  original.fill(1.5f);
  store.put(1, 0, original);
  // The next write dies before the rename — the old block must survive
  // intact (atomic temp + fsync + rename).
  FaultSpec spec;
  spec.fail_write_nth = 1;
  set_fault_spec(spec);
  Matrix replacement(2, 3);
  replacement.fill(9.0f);
  EXPECT_EQ(kind_of([&] { store.put(1, 0, replacement); }), ErrorKind::kIo);
  clear_fault_injection();
  Matrix out;
  store.get(1, 0, out);
  EXPECT_EQ(out, original);
  store.clear();
}

TEST(ShardedForward, RecoversAfterAKilledSpillWrite) {
  const Netlist netlist = test_netlist(44, 800);
  const GraphTensors tensors = build_graph_tensors(netlist);
  GcnModel model(small_config());
  const Matrix reference = model.infer(tensors);
  ShardedGcnOptions options;
  options.shards = 2;
  options.halo = 1;
  options.spill_dir = testing::TempDir() + "gcnt_shard_recover";
  ShardedGcnEngine engine(model, options);
  // Kill the 5th spill write mid-refresh: the forward aborts with kIo and
  // no cache is published.
  FaultSpec spec;
  spec.fail_write_nth = 5;
  set_fault_spec(spec);
  EXPECT_EQ(kind_of([&] { engine.refresh(tensors); }), ErrorKind::kIo);
  clear_fault_injection();
  // The retry starts clean and produces the exact monolithic bits.
  engine.refresh(tensors);
  EXPECT_EQ(engine.logits(), reference);
}

}  // namespace
}  // namespace gcnt
