// Cross-module property tests on generated circuits: behavior-preserving
// round-trips, monotonicity of observability under OP insertion, and
// incremental-vs-full agreement, swept over seeds with parameterized gtest.

#include <gtest/gtest.h>

#include <map>

#include "atpg/atpg.h"
#include "common/rng.h"
#include "cop/cop.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"

namespace gcnt {
namespace {

GeneratorConfig sweep_config(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = 400;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.flip_flops = 10;
  config.trap_fraction = 0.03;
  return config;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, BenchRoundTripPreservesSimulation) {
  const Netlist original = generate_circuit(sweep_config(GetParam()));
  const Netlist reparsed =
      read_bench_string(write_bench_string(original), "rt");
  ASSERT_EQ(reparsed.size(), original.size());

  // Node ids may be permuted; signals are matched by name.
  std::map<std::string, NodeId> reparsed_by_name;
  for (NodeId v = 0; v < reparsed.size(); ++v) {
    reparsed_by_name[reparsed.node_name(v)] = v;
  }

  LogicSimulator sim_a(original);
  LogicSimulator sim_b(reparsed);
  ASSERT_EQ(sim_a.sources().size(), sim_b.sources().size());

  // Drive both with the same named assignment.
  Rng rng(GetParam() * 31 + 7);
  const PatternBatch batch_a = sim_a.random_batch(rng);
  std::map<std::string, std::uint64_t> assignment;
  for (std::size_t i = 0; i < sim_a.sources().size(); ++i) {
    assignment[original.node_name(sim_a.sources()[i])] = batch_a[i];
  }
  PatternBatch batch_b(sim_b.sources().size());
  for (std::size_t i = 0; i < sim_b.sources().size(); ++i) {
    batch_b[i] = assignment.at(reparsed.node_name(sim_b.sources()[i]));
  }

  std::vector<std::uint64_t> values_a, values_b;
  sim_a.simulate(batch_a, values_a);
  sim_b.simulate(batch_b, values_b);
  for (NodeId v = 0; v < original.size(); ++v) {
    if (is_logic(original.type(v))) {
      const NodeId w = reparsed_by_name.at(original.node_name(v));
      EXPECT_EQ(values_a[v], values_b[w]) << original.node_name(v);
    }
  }
}

TEST_P(SeedSweep, ObservePointsOnlyImproveObservability) {
  Netlist netlist = generate_circuit(sweep_config(GetParam()));
  LogicSimulator sim_before(netlist);
  FaultSimulator probe_before(sim_before);
  Rng rng(GetParam());
  const PatternBatch batch = sim_before.random_batch(rng);
  std::vector<std::uint64_t> values;
  sim_before.simulate(batch, values);

  std::vector<std::uint64_t> before(netlist.size());
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (is_sink(netlist.type(v))) continue;
    before[v] = probe_before.observe_word(v, values);
  }

  // Insert OPs at a few spread-out logic nodes.
  const std::size_t original_size = netlist.size();
  for (NodeId v = 13; v < original_size; v += 97) {
    if (is_logic(netlist.type(v))) netlist.insert_observe_point(v);
  }
  ASSERT_GT(netlist.observe_points().size(), 0u);

  LogicSimulator sim_after(netlist);
  FaultSimulator probe_after(sim_after);
  // Same source values: new netlist has the same sources.
  std::vector<std::uint64_t> values_after;
  sim_after.simulate(batch, values_after);
  for (NodeId v = 0; v < original_size; ++v) {
    if (is_sink(netlist.type(v))) continue;
    const std::uint64_t after = probe_after.observe_word(v, values_after);
    EXPECT_EQ(after & before[v], before[v])
        << "node " << v << ": OP insertion lost observability bits";
  }
}

TEST_P(SeedSweep, ScoapObservabilityMonotoneUnderOps) {
  Netlist netlist = generate_circuit(sweep_config(GetParam()));
  const auto before = compute_scoap(netlist);
  const std::size_t original_size = netlist.size();
  for (NodeId v = 5; v < original_size; v += 61) {
    if (is_logic(netlist.type(v))) netlist.insert_observe_point(v);
  }
  const auto after = compute_scoap(netlist);
  for (NodeId v = 0; v < original_size; ++v) {
    EXPECT_LE(after.co[v], before.co[v]) << "node " << v;
    // Controllability is untouched by observation points.
    EXPECT_EQ(after.cc0[v], before.cc0[v]);
    EXPECT_EQ(after.cc1[v], before.cc1[v]);
  }
}

TEST_P(SeedSweep, CopObservabilityMonotoneUnderOps) {
  Netlist netlist = generate_circuit(sweep_config(GetParam()));
  const auto before = compute_cop(netlist);
  const std::size_t original_size = netlist.size();
  for (NodeId v = 5; v < original_size; v += 61) {
    if (is_logic(netlist.type(v))) netlist.insert_observe_point(v);
  }
  const auto after = compute_cop(netlist);
  for (NodeId v = 0; v < original_size; ++v) {
    EXPECT_GE(after.observability[v] + 1e-12, before.observability[v])
        << "node " << v;
    EXPECT_DOUBLE_EQ(after.prob_one[v], before.prob_one[v]);
  }
}

TEST_P(SeedSweep, IncrementalScoapAgreesAfterManyInsertions) {
  Netlist netlist = generate_circuit(sweep_config(GetParam()));
  auto incremental = compute_scoap(netlist);
  const std::size_t original_size = netlist.size();
  for (NodeId v = 3; v < original_size; v += 53) {
    if (!is_logic(netlist.type(v))) continue;
    netlist.insert_observe_point(v);
    update_observability_after_observe(netlist, v, incremental);
  }
  const auto full = compute_scoap(netlist);
  for (NodeId v = 0; v < netlist.size(); ++v) {
    EXPECT_EQ(incremental.co[v], full.co[v]) << "node " << v;
  }
}

TEST_P(SeedSweep, AtpgPatternsBoundedAndCoverageSane) {
  const Netlist netlist = generate_circuit(sweep_config(GetParam()));
  AtpgOptions options;
  options.seed = GetParam();
  const AtpgResult result = run_atpg(netlist, options);
  EXPECT_LE(result.detected_faults, result.total_faults);
  EXPECT_LE(result.pattern_count, result.detected_faults);
  EXPECT_GE(result.test_coverage(), result.fault_coverage());
  EXPECT_GT(result.fault_coverage(), 0.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace gcnt
