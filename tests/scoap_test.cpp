// SCOAP testability measures: hand-computed gate rules, saturation, and the
// incremental observability update property.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"

namespace gcnt {
namespace {

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

TEST(ScoapAdd, Saturates) {
  EXPECT_EQ(scoap_add(1, 2), 3u);
  EXPECT_EQ(scoap_add(kScoapInfinity, 5), kScoapInfinity);
  EXPECT_EQ(scoap_add(kScoapInfinity - 1, 1), kScoapInfinity);
  EXPECT_EQ(scoap_add(kScoapInfinity, kScoapInfinity), kScoapInfinity);
}

TEST(Scoap, PrimaryInputCosts) {
  const Netlist n = read_bench_string("INPUT(a)\nOUTPUT(a)\n");
  const auto m = compute_scoap(n);
  const NodeId a = by_name(n, "a");
  EXPECT_EQ(m.cc0[a], 1u);
  EXPECT_EQ(m.cc1[a], 1u);
  EXPECT_EQ(m.co[a], 0u);  // drives the PO directly
}

TEST(Scoap, AndGateRules) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto m = compute_scoap(n);
  const NodeId g = by_name(n, "g");
  const NodeId a = by_name(n, "a");
  EXPECT_EQ(m.cc1[g], 3u);  // both inputs to 1: 1+1+1
  EXPECT_EQ(m.cc0[g], 2u);  // one input to 0: 1+1
  EXPECT_EQ(m.co[g], 0u);
  EXPECT_EQ(m.co[a], 2u);  // co(g) + cc1(b) + 1
}

TEST(Scoap, OrNorGateRules) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(o)\nOUTPUT(r)\no = OR(a, b)\nr = NOR(a, "
      "b)\n");
  const auto m = compute_scoap(n);
  EXPECT_EQ(m.cc0[by_name(n, "o")], 3u);  // all inputs 0
  EXPECT_EQ(m.cc1[by_name(n, "o")], 2u);  // any input 1
  EXPECT_EQ(m.cc0[by_name(n, "r")], 2u);  // inverted
  EXPECT_EQ(m.cc1[by_name(n, "r")], 3u);
}

TEST(Scoap, NandNotBufRules) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nOUTPUT(z)\n"
      "x = NAND(a, b)\ny = NOT(a)\nz = BUF(b)\n");
  const auto m = compute_scoap(n);
  EXPECT_EQ(m.cc0[by_name(n, "x")], 3u);
  EXPECT_EQ(m.cc1[by_name(n, "x")], 2u);
  EXPECT_EQ(m.cc0[by_name(n, "y")], 2u);  // cc1(a)+1
  EXPECT_EQ(m.cc1[by_name(n, "y")], 2u);
  EXPECT_EQ(m.cc0[by_name(n, "z")], 2u);
}

TEST(Scoap, XorParityDynamicProgram) {
  const Netlist n2 =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = XOR(a, b)\n");
  const auto m2 = compute_scoap(n2);
  EXPECT_EQ(m2.cc0[by_name(n2, "g")], 3u);
  EXPECT_EQ(m2.cc1[by_name(n2, "g")], 3u);

  const Netlist n3 = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g)\ng = XOR(a, b, c)\n");
  const auto m3 = compute_scoap(n3);
  EXPECT_EQ(m3.cc0[by_name(n3, "g")], 4u);
  EXPECT_EQ(m3.cc1[by_name(n3, "g")], 4u);

  const Netlist nx = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = XNOR(a, b)\n");
  const auto mx = compute_scoap(nx);
  EXPECT_EQ(mx.cc0[by_name(nx, "g")], 3u);
  EXPECT_EQ(mx.cc1[by_name(nx, "g")], 3u);
}

TEST(Scoap, XorObservabilityUsesEitherValue) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = XOR(a, b)\n");
  const auto m = compute_scoap(n);
  // co(a) = co(g) + min(cc0(b), cc1(b)) + 1 = 0 + 1 + 1.
  EXPECT_EQ(m.co[by_name(n, "a")], 2u);
}

TEST(Scoap, DffActsAsScanCell) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = BUF(q)\n");
  const auto m = compute_scoap(n);
  const NodeId q = by_name(n, "q");
  EXPECT_EQ(m.cc0[q], 1u);  // scan load
  EXPECT_EQ(m.cc1[q], 1u);
  EXPECT_EQ(m.co[by_name(n, "a")], 0u);  // captured by the scan D pin
}

TEST(Scoap, ObservabilityPrefersEasiestBranch) {
  // a fans out to an easy path (direct PO) and a hard path (side of AND).
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(a)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto m = compute_scoap(n);
  EXPECT_EQ(m.co[by_name(n, "a")], 0u);  // the PO branch wins
}

TEST(Scoap, DeepChainAccumulates) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(d)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\n");
  const auto m = compute_scoap(n);
  EXPECT_EQ(m.co[by_name(n, "a")], 3u);
  EXPECT_EQ(m.cc0[by_name(n, "d")], 4u);
}

TEST(Scoap, ObservePointZeroesObservability) {
  Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(h)\ng = AND(a, b)\nh = AND(g, "
      "c)\n");
  auto m = compute_scoap(n);
  const NodeId g = by_name(n, "g");
  const NodeId a = by_name(n, "a");
  const std::uint32_t co_a_before = m.co[a];
  EXPECT_GT(m.co[g], 0u);

  n.insert_observe_point(g);
  update_observability_after_observe(n, g, m);
  EXPECT_EQ(m.co[g], 0u);
  EXPECT_LT(m.co[a], co_a_before);
}

TEST(Scoap, IncrementalUpdateMatchesFullRecompute) {
  GeneratorConfig config;
  config.seed = 71;
  config.target_gates = 600;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.flip_flops = 12;
  Netlist n = generate_circuit(config);
  auto incremental = compute_scoap(n);

  // Insert a handful of OPs at spread-out logic nodes.
  std::size_t inserted = 0;
  for (NodeId v = 0; v < n.size() && inserted < 5; v += 97) {
    if (!is_logic(n.type(v))) continue;
    const NodeId target = v;
    n.insert_observe_point(target);
    update_observability_after_observe(n, target, incremental);
    ++inserted;
  }
  ASSERT_GT(inserted, 0u);

  const auto full = compute_scoap(n);
  ASSERT_EQ(full.co.size(), incremental.co.size());
  for (NodeId v = 0; v < n.size(); ++v) {
    EXPECT_EQ(incremental.co[v], full.co[v]) << "node " << v;
    EXPECT_EQ(incremental.cc0[v], full.cc0[v]) << "node " << v;
    EXPECT_EQ(incremental.cc1[v], full.cc1[v]) << "node " << v;
  }
}

TEST(Scoap, DuplicateFaninHandled) {
  const Netlist n =
      read_bench_string("INPUT(a)\nOUTPUT(g)\ng = AND(a, a)\n");
  const auto m = compute_scoap(n);
  NodeId g = kInvalidNode, a = kInvalidNode;
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == "g") g = v;
    if (n.node_name(v) == "a") a = v;
  }
  EXPECT_EQ(m.cc1[g], 3u);  // both (duplicated) inputs to 1
  // a observed through either slot with the sibling (itself) at 1.
  EXPECT_EQ(m.co[a], 2u);
}

TEST(Scoap, ObserveThroughExported) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto m = compute_scoap(n);
  const NodeId g = by_name(n, "g");
  // Through slot 0 of g with gate observability 5: 5 + cc1(b) + 1.
  EXPECT_EQ(scoap_observe_through(n, g, 0, m, 5), 7u);
}

}  // namespace
}  // namespace gcnt
