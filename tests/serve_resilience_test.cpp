// Resilience tests for the `gcnt serve` daemon: per-request deadlines
// (shed at dequeue and mid-batch), brownout serving from cached logits,
// the worker watchdog (log / abort / quarantine), connection hygiene
// (idle reaping, mid-frame stall drops, the connection cap), client
// timeouts and retry/backoff, and a chaos sweep driving the
// GCNT_FAULT_INJECT serve probes end to end.
//
// The contract under test: faults change which requests are *answered*
// — never whether the daemon survives, and never the bits of the
// requests it does answer.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault_inject.h"
#include "common/stats.h"
#include "gcn/graph_tensors.h"
#include "gcn/model.h"
#include "gcn/serialize.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"
#include "serve/client.h"
#include "serve/server.h"

namespace gcnt::serve {
namespace {

GcnConfig small_config(std::uint64_t seed = 31) {
  GcnConfig config;
  config.depth = 2;
  config.embed_dims = {8, 12};
  config.fc_dims = {10};
  config.seed = seed;
  return config;
}

Netlist small_circuit(std::uint64_t seed = 3, std::size_t gates = 260) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.target_gates = gates;
  return generate_circuit(gen);
}

/// A circuit as both .bench text and the netlist the server will parse
/// from it (the .bench round trip renumbers nodes; see serve_server_test).
struct Circuit {
  std::string text;
  Netlist netlist;
};

Circuit canonical_circuit(std::uint64_t seed = 3, std::size_t gates = 260) {
  std::string text = write_bench_string(small_circuit(seed, gates));
  Netlist netlist = read_bench_string(text);
  return Circuit{std::move(text), std::move(netlist)};
}

Matrix reference_logits(const Netlist& netlist, const GcnModel& model) {
  const ScoapMeasures scoap = compute_scoap(netlist);
  const std::vector<std::uint32_t> levels = netlist.logic_levels();
  const GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
  return model.infer(tensors);
}

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

std::uint64_t counter_value(const char* name) {
  return StatsRegistry::instance().counter(name).value();
}

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Owns the on-disk fixtures and the in-process daemon for one test.
/// Stats are enabled for the duration (the resilience counters are the
/// observable contract) and every fault probe is disarmed on both ends.
class ServeResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_fault_injection();
    set_stats_enabled(true);
    const std::string tag =
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "_" + std::to_string(::getpid());
    model_path_ = "serve_res_model_" + tag + ".bin";
    socket_path_ = "serve_res_" + tag + ".sock";
    model_ = std::make_unique<GcnModel>(small_config());
    save_model_file(*model_, model_path_);
  }

  void TearDown() override {
    clear_fault_injection();
    if (server_) {
      server_->request_stop();
      server_->wait();
      server_.reset();
    }
    set_stats_enabled(false);
    ::unlink(model_path_.c_str());
    ::unlink(socket_path_.c_str());
  }

  ServeOptions options() const {
    ServeOptions options;
    options.model_path = model_path_;
    options.unix_socket = socket_path_;
    return options;
  }

  void start(ServeOptions options) {
    server_ = std::make_unique<ServeServer>(std::move(options));
    server_->start();
  }

  ServeClient connect(const ClientOptions& client_options = {}) {
    return ServeClient::connect_unix(socket_path_, client_options);
  }

  /// Arms exactly the clauses in `text` (counters reset).
  static void arm(const std::string& text) {
    set_fault_spec(parse_fault_spec(text));
  }

  /// Fires one raw request frame without waiting for its reply.
  static void send_raw(int fd, Op op, std::uint32_t request_id,
                       const std::string& body = {},
                       std::uint32_t deadline_ms = 0) {
    Frame frame;
    frame.opcode = static_cast<std::uint8_t>(op);
    frame.request_id = request_id;
    frame.body = body;
    if (deadline_ms != 0) {
      frame.flags |= kFrameFlagDeadline;
      frame.deadline_ms = deadline_ms;
    }
    write_frame(fd, frame);
  }

  /// Blocks for one response frame; returns its wire status byte.
  static std::uint8_t read_status(int fd, Frame& response) {
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    const ReadStatus status = read_frame(fd, response, kind, message);
    EXPECT_EQ(status, ReadStatus::kFrame) << message;
    if (status != ReadStatus::kFrame) return 0xff;
    WireReader reader(response.body);
    return reader.u8();
  }

  static std::string infer_body(const std::string& session) {
    std::string body;
    WireWriter writer(body);
    writer.str(session);
    return body;
  }

  std::string model_path_;
  std::string socket_path_;
  std::unique_ptr<GcnModel> model_;
  std::unique_ptr<ServeServer> server_;
};

// ---------------------------------------------------------------------------
// Deadlines

TEST_F(ServeResilienceTest, DeadlineShedAtDequeue) {
  ServeOptions opts = options();
  opts.workers = 1;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);
  setup.infer("s1");

  const std::uint64_t shed_before = counter_value("serve.shed_deadline");
  // Stall the one worker on a ping, then queue an infer whose 50 ms
  // deadline expires while the worker sleeps: it must be shed at
  // dequeue with the typed `deadline` error, not served late.
  arm("serve-delay:nth=1,ms=400");
  ServeClient blocker = connect();
  send_raw(blocker.write_fd(), Op::kPing, 1);
  sleep_ms(100);  // let the worker pick up the ping (and its delay)

  ClientOptions deadline_opts;
  deadline_opts.deadline_ms = 50;
  ServeClient client = connect(deadline_opts);
  try {
    client.infer("s1");
    FAIL() << "expected Error{kDeadline}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kDeadline);
  }
  Frame response;
  EXPECT_EQ(read_status(blocker.write_fd(), response), kStatusOk);
  EXPECT_GE(counter_value("serve.shed_deadline"), shed_before + 1);
  clear_fault_injection();
  // The shed request cost nothing: the session still serves exact bits.
  expect_bit_identical(client.infer("s1"),
                       reference_logits(circuit.netlist, *model_));
}

TEST_F(ServeResilienceTest, MidBatchDeadlineShed) {
  ServeOptions opts = options();
  opts.workers = 1;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);
  setup.infer("s1");

  const std::uint64_t shed_before = counter_value("serve.shed_batch");
  // One connection, pipelined: a delayed ping parks the worker, then two
  // same-session infers queue up. The worker claims both as one batch;
  // the second carries a 1 ms deadline that has long expired by claim
  // time and must be shed from the batch individually.
  arm("serve-delay:nth=1,ms=400");
  ServeClient client = connect();
  const int fd = client.write_fd();
  send_raw(fd, Op::kPing, 1);
  sleep_ms(100);
  send_raw(fd, Op::kInfer, 2, infer_body("s1"));
  send_raw(fd, Op::kInfer, 3, infer_body("s1"), /*deadline_ms=*/1);

  bool saw_ok_infer = false;
  bool saw_deadline = false;
  for (int i = 0; i < 3; ++i) {
    Frame response;
    const std::uint8_t status = read_status(fd, response);
    if (response.request_id == 2) {
      saw_ok_infer = (status == kStatusOk);
    } else if (response.request_id == 3) {
      saw_deadline =
          (error_kind_for_status(status) == ErrorKind::kDeadline);
    }
  }
  EXPECT_TRUE(saw_ok_infer);
  EXPECT_TRUE(saw_deadline);
  EXPECT_GE(counter_value("serve.shed_batch"), shed_before + 1);
}

// ---------------------------------------------------------------------------
// Brownout

TEST_F(ServeResilienceTest, BrownoutServesCachedLogitsUnderBacklog) {
  ServeOptions opts = options();
  opts.workers = 1;
  opts.brownout_queue = 1;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);
  const Matrix expected = reference_logits(circuit.netlist, *model_);
  // Warm the session cache so brownout has bits to serve.
  expect_bit_identical(setup.infer("s1"), expected);

  const std::uint64_t served_before = counter_value("serve.brownout_served");
  // Park the worker, then pile three infers into the queue: each is
  // dequeued with a non-empty backlog (depth >= 1), so all must be
  // answered from the cache with the brownout flag on the wire.
  arm("serve-delay:nth=1,ms=400");
  ServeClient client = connect();
  const int fd = client.write_fd();
  send_raw(fd, Op::kPing, 1);
  sleep_ms(100);
  for (std::uint32_t id = 2; id <= 4; ++id) {
    send_raw(fd, Op::kInfer, id, infer_body("s1"));
  }
  std::size_t brownout_replies = 0;
  for (int i = 0; i < 4; ++i) {
    Frame response;
    const std::uint8_t status = read_status(fd, response);
    EXPECT_EQ(status, kStatusOk);
    if (response.is_brownout()) ++brownout_replies;
  }
  EXPECT_GE(brownout_replies, 1u);
  EXPECT_GE(counter_value("serve.brownout_served"), served_before + 1);
  clear_fault_injection();

  // Once the backlog drains, a solo infer is served fresh — no flag,
  // same exact bits.
  ServeClient after = connect();
  expect_bit_identical(after.infer("s1"), expected);
  EXPECT_FALSE(after.last_brownout());
}

TEST_F(ServeResilienceTest, BrownoutMissFallsBackToForward) {
  ServeOptions opts = options();
  opts.workers = 1;
  opts.brownout_queue = 1;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);
  // No warm-up: the cache is cold, so a brownout-eligible dequeue has
  // nothing stale to serve and must fall through to a real forward.
  const std::uint64_t miss_before = counter_value("serve.brownout_miss");
  arm("serve-delay:nth=1,ms=300");
  ServeClient client = connect();
  const int fd = client.write_fd();
  send_raw(fd, Op::kPing, 1);
  sleep_ms(80);
  send_raw(fd, Op::kInfer, 2, infer_body("s1"));
  send_raw(fd, Op::kInfer, 3, infer_body("s1"));
  for (int i = 0; i < 3; ++i) {
    Frame response;
    EXPECT_EQ(read_status(fd, response), kStatusOk);
  }
  EXPECT_GE(counter_value("serve.brownout_miss"), miss_before + 1);
  clear_fault_injection();
  expect_bit_identical(connect().infer("s1"),
                       reference_logits(circuit.netlist, *model_));
}

// ---------------------------------------------------------------------------
// Watchdog

TEST_F(ServeResilienceTest, WatchdogQuarantinesStuckSession) {
  ServeOptions opts = options();
  opts.workers = 2;
  opts.watchdog_budget_ms = 100;
  opts.watchdog_action = WatchdogAction::kQuarantine;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);
  setup.infer("s1");

  const std::uint64_t stuck_before = counter_value("serve.watchdog_stuck");
  // Wedge one worker inside an s1 infer for far longer than the budget;
  // the watchdog must flag it and take s1 out of service.
  arm("serve-delay:nth=1,ms=600");
  ServeClient stuck = connect();
  send_raw(stuck.write_fd(), Op::kInfer, 1, infer_body("s1"));
  sleep_ms(350);  // budget 100 ms + watchdog tick, with margin
  EXPECT_GE(counter_value("serve.watchdog_stuck"), stuck_before + 1);

  ServeClient client = connect();
  try {
    client.infer("s1");
    FAIL() << "expected Error{kResource}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kResource);
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos)
        << e.what();
  }
  // The stuck request is still answered — quarantine never drops work
  // in flight. Here the injected stall sits before the session lookup,
  // so its own reply is the quarantine's `resource` error; a stall
  // inside the forward pass would have answered ok.
  Frame response;
  const std::uint8_t stuck_status = read_status(stuck.write_fd(), response);
  if (stuck_status != kStatusOk) {
    EXPECT_EQ(error_kind_for_status(stuck_status), ErrorKind::kResource);
  }
  clear_fault_injection();

  // Closing the session lifts the quarantine; a reload serves again.
  client.close_session("s1");
  client.load_session_inline("s1", circuit.text, false);
  expect_bit_identical(client.infer("s1"),
                       reference_logits(circuit.netlist, *model_));
}

TEST_F(ServeResilienceTest, WatchdogAbortClosesStuckConnection) {
  ServeOptions opts = options();
  opts.workers = 2;
  opts.watchdog_budget_ms = 100;
  opts.watchdog_action = WatchdogAction::kAbort;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);

  const std::uint64_t stuck_before = counter_value("serve.watchdog_stuck");
  arm("serve-delay:nth=1,ms=800");
  ServeClient stuck = connect();
  send_raw(stuck.write_fd(), Op::kInfer, 1, infer_body("s1"));

  // The watchdog must close the wedged connection: the client sees the
  // stream end instead of waiting out the full stall.
  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  const ReadStatus status =
      read_frame(stuck.write_fd(), response, kind, message);
  EXPECT_NE(status, ReadStatus::kFrame);
  EXPECT_GE(counter_value("serve.watchdog_stuck"), stuck_before + 1);
  clear_fault_injection();

  // The daemon itself is unharmed: fresh connection, exact bits.
  expect_bit_identical(connect().infer("s1"),
                       reference_logits(circuit.netlist, *model_));
}

// ---------------------------------------------------------------------------
// Connection hygiene

TEST_F(ServeResilienceTest, IdleConnectionIsReaped) {
  ServeOptions opts = options();
  opts.read_timeout_ms = 100;
  opts.idle_timeout_ms = 200;
  start(opts);

  const std::uint64_t reaped_before = counter_value("serve.idle_reaped");
  ServeClient idle = connect();
  // Send nothing: after ~200 ms of silence at a frame boundary the
  // server must close the connection (EOF here), not hold it forever.
  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(read_frame(idle.write_fd(), response, kind, message),
            ReadStatus::kEof);
  EXPECT_GE(counter_value("serve.idle_reaped"), reaped_before + 1);

  // Active connections are untouched by the reaper.
  ServeClient active = connect();
  active.ping();
}

TEST_F(ServeResilienceTest, MidFrameStallDropsConnection) {
  ServeOptions opts = options();
  opts.read_timeout_ms = 100;
  start(opts);

  ServeClient staller = connect();
  // Two bytes of a length prefix, then silence: a slowloris peer. The
  // mid-frame read stall must drop the connection within the budget.
  const char partial[2] = {0x10, 0x00};
  ASSERT_EQ(::write(staller.write_fd(), partial, 2), 2);
  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_NE(read_frame(staller.write_fd(), response, kind, message),
            ReadStatus::kFrame);
  connect().ping();
}

TEST_F(ServeResilienceTest, ConnectionCapRejectsExcessPeers) {
  ServeOptions opts = options();
  opts.max_connections = 1;
  start(opts);

  ServeClient first = connect();
  first.ping();  // the reader for this connection is live

  const std::uint64_t rejected_before = counter_value("serve.conn_rejected");
  ServeClient second = connect();  // accept() succeeds, then is rejected
  Frame response;
  const std::uint8_t status = read_status(second.write_fd(), response);
  EXPECT_EQ(error_kind_for_status(status), ErrorKind::kResource);
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  EXPECT_EQ(read_frame(second.write_fd(), response, kind, message),
            ReadStatus::kEof);
  EXPECT_GE(counter_value("serve.conn_rejected"), rejected_before + 1);
  // The admitted peer is unaffected.
  first.ping();
}

// ---------------------------------------------------------------------------
// Client timeouts and retry

TEST_F(ServeResilienceTest, ClientRecvTimeoutSurfacesTypedIoError) {
  ServeOptions opts = options();
  opts.workers = 1;
  start(opts);

  arm("serve-delay:nth=1,ms=500");
  ClientOptions copts;
  copts.recv_timeout_ms = 100;
  ServeClient client = connect(copts);
  try {
    client.ping();
    FAIL() << "expected Error{kIo}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
}

TEST_F(ServeResilienceTest, RetryRecoversFromTornReply) {
  start(options());
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);

  // The next reply write is torn mid-frame and the connection dropped.
  // An idempotent call under a retry policy must reconnect, resend, and
  // return the exact bits as if nothing happened.
  const std::uint64_t fired_before =
      counter_value("faultinject.serve_short_write_fired");
  arm("serve-short-write:nth=1");
  ClientOptions copts;
  copts.retry.max_attempts = 3;
  copts.retry.base_backoff_ms = 1;
  copts.retry.max_backoff_ms = 5;
  ServeClient client = connect(copts);
  expect_bit_identical(client.infer("s1"),
                       reference_logits(circuit.netlist, *model_));
  EXPECT_EQ(counter_value("faultinject.serve_short_write_fired"),
            fired_before + 1);
}

TEST_F(ServeResilienceTest, NonIdempotentOpsAreNeverRetried) {
  start(options());
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);

  // Tear exactly the first reply. If the client (wrongly) retried the
  // append, the second attempt would succeed and no error would surface
  // — the throw below is the proof that it did not.
  const std::uint64_t fired_before =
      counter_value("faultinject.serve_short_write_fired");
  arm("serve-short-write:nth=1");
  ClientOptions copts;
  copts.retry.max_attempts = 3;
  copts.retry.base_backoff_ms = 1;
  ServeClient client = connect(copts);
  // append_observe mutates the session: a torn reply is ambiguous (the
  // edit may have landed), so the client must surface the transport
  // error rather than blindly resend.
  try {
    client.append_observe("s1", 0);
    FAIL() << "expected a transport Error";
  } catch (const Error& e) {
    EXPECT_TRUE(e.kind() == ErrorKind::kIo || e.kind() == ErrorKind::kCorrupt)
        << error_kind_name(e.kind());
  }
  // Exactly one attempt reached the server.
  EXPECT_EQ(counter_value("faultinject.serve_short_write_fired"),
            fired_before + 1);
}

// ---------------------------------------------------------------------------
// Health ping

TEST_F(ServeResilienceTest, PingReportsHealth) {
  ServeOptions opts = options();
  opts.workers = 3;
  start(opts);
  ServeClient client = connect();
  client.load_session_inline("s1", canonical_circuit().text, false);

  const ServeClient::Health health = client.ping();
  EXPECT_EQ(health.workers, 3u);
  EXPECT_GE(health.model_generation, 1u);
  EXPECT_EQ(health.sessions, 1u);
  EXPECT_FALSE(health.brownout);

  // A v1 ping gets the v1 contract: an empty body (status byte only),
  // echoed at the requester's version.
  Frame frame;
  frame.version = 1;
  frame.opcode = static_cast<std::uint8_t>(Op::kPing);
  frame.request_id = 9;
  write_frame(client.write_fd(), frame);
  Frame response;
  EXPECT_EQ(read_status(client.write_fd(), response), kStatusOk);
  EXPECT_EQ(response.version, 1u);
  EXPECT_EQ(response.body.size(), 1u);  // no health fields for v1 peers
}

// ---------------------------------------------------------------------------
// Chaos sweep

TEST_F(ServeResilienceTest, ChaosSweepSurvivesWithTypedErrorsOnly) {
  ServeOptions opts = options();
  opts.workers = 2;
  opts.watchdog_budget_ms = 2000;
  start(opts);
  ServeClient setup = connect();
  const Circuit circuit = canonical_circuit();
  setup.load_session_inline("s1", circuit.text, false);
  const Matrix expected = reference_logits(circuit.netlist, *model_);
  expect_bit_identical(setup.infer("s1"), expected);

  // Recurring torn reads, decode alloc failures, and worker delays, all
  // interleaved. The daemon must answer every request with either the
  // exact bits or a typed error — no hangs, no crashes, no leaks.
  arm("serve-torn-read:nth=5,every=7;serve-alloc:nth=3,every=5;"
      "serve-delay:nth=2,every=9,ms=20");
  ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.recv_timeout_ms = 5000;
  copts.retry.max_attempts = 4;
  copts.retry.base_backoff_ms = 1;
  copts.retry.max_backoff_ms = 10;

  std::size_t ok = 0;
  std::size_t typed_errors = 0;
  auto client = std::make_unique<ServeClient>(connect(copts));
  for (int i = 0; i < 40; ++i) {
    try {
      expect_bit_identical(client->infer("s1"), expected);
      ++ok;
    } catch (const Error& e) {
      // The only acceptable failures under these faults.
      EXPECT_TRUE(e.kind() == ErrorKind::kIo ||
                  e.kind() == ErrorKind::kCorrupt ||
                  e.kind() == ErrorKind::kResource)
          << error_kind_name(e.kind()) << ": " << e.what();
      ++typed_errors;
      client = std::make_unique<ServeClient>(connect(copts));
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GT(counter_value("faultinject.serve_torn_read_fired"), 0u);
  EXPECT_GT(counter_value("faultinject.serve_alloc_fired"), 0u);
  EXPECT_GT(counter_value("faultinject.serve_delay_fired"), 0u);
  clear_fault_injection();

  // Faults off: the session is intact and still serves the exact bits.
  EXPECT_EQ(server_->session_count(), 1u);
  expect_bit_identical(connect().infer("s1"), expected);
}

}  // namespace
}  // namespace gcnt::serve
