// COP probabilistic testability: gate rules and agreement with simulation
// on tree (reconvergence-free) circuits, where COP is exact.

#include <gtest/gtest.h>

#include <bit>
#include <string>

#include "common/rng.h"
#include "cop/cop.h"
#include "netlist/bench_io.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"

namespace gcnt {
namespace {

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

TEST(Cop, GateSignalProbabilities) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(g_and)
OUTPUT(g_or)
OUTPUT(g_nand)
OUTPUT(g_nor)
OUTPUT(g_xor)
OUTPUT(g_not)
g_and = AND(a, b)
g_or = OR(a, b)
g_nand = NAND(a, b)
g_nor = NOR(a, b)
g_xor = XOR(a, b)
g_not = NOT(a)
)");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "a")], 0.5);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g_and")], 0.25);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g_or")], 0.75);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g_nand")], 0.75);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g_nor")], 0.25);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g_xor")], 0.5);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g_not")], 0.5);
}

TEST(Cop, WideAndIsRarelyOne) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(g)\ng = AND(a, b, c, "
      "d)\n");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g")], 1.0 / 16.0);
}

TEST(Cop, XorParityAnyWidthIsHalf) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g)\ng = XOR(a, b, c)\n");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.prob_one[by_name(n, "g")], 0.5);
}

TEST(Cop, ObservabilityThroughAnd) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.observability[by_name(n, "g")], 1.0);
  EXPECT_DOUBLE_EQ(m.observability[by_name(n, "a")], 0.5);  // needs b == 1
}

TEST(Cop, ObservabilityThroughXorIsFree) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = XOR(a, b)\n");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.observability[by_name(n, "a")], 1.0);
}

TEST(Cop, ObservabilityCombinesBranches) {
  // a observed via two independent AND branches, each with prob 0.5.
  const Netlist n = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(g)
OUTPUT(h)
g = AND(a, b)
h = AND(a, c)
)");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.observability[by_name(n, "a")], 0.75);  // 1-(1-.5)^2
}

TEST(Cop, ScanCellIsObserved) {
  const Netlist n =
      read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.observability[by_name(n, "a")], 1.0);
}

TEST(Cop, DeepAndChainDecays) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(g3)
g1 = AND(a, b)
g2 = AND(g1, c)
g3 = AND(g2, d)
)");
  const auto m = compute_cop(n);
  EXPECT_DOUBLE_EQ(m.observability[by_name(n, "a")], 0.5 * 0.5 * 0.5);
}

TEST(Cop, DetectionProbability) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto m = compute_cop(n);
  const auto dp = detection_probability(m, by_name(n, "g"));
  EXPECT_DOUBLE_EQ(dp.sa0, 0.25);  // need g == 1
  EXPECT_DOUBLE_EQ(dp.sa1, 0.75);  // need g == 0
}

/// Random tree circuit: every signal drives exactly one gate, so COP's
/// independence assumption holds exactly.
Netlist random_tree(Rng& rng, int gates) {
  Netlist n("tree");
  std::vector<NodeId> available;
  for (int i = 0; i < gates + 4; ++i) {
    available.push_back(
        n.add_node(CellType::kInput, "i" + std::to_string(i)));
  }
  for (int g = 0; g < gates; ++g) {
    const double r = rng.uniform();
    CellType type = r < 0.3   ? CellType::kAnd
                    : r < 0.6 ? CellType::kOr
                    : r < 0.8 ? CellType::kXor
                              : CellType::kNand;
    const NodeId gate = n.add_node(type);
    for (int k = 0; k < 2; ++k) {
      if (available.empty()) break;
      const std::size_t pick = rng.below(available.size());
      n.connect(available[pick], gate);
      available.erase(available.begin() + static_cast<long>(pick));
    }
    available.push_back(gate);
  }
  for (NodeId v : available) {
    const NodeId po = n.add_node(CellType::kOutput);
    n.connect(v, po);
  }
  return n;
}

TEST(Cop, SignalProbabilityMatchesSimulationOnTrees) {
  Rng rng(101);
  const Netlist n = random_tree(rng, 60);
  ASSERT_TRUE(n.validate().empty());
  const auto m = compute_cop(n);

  LogicSimulator sim(n);
  std::vector<std::uint32_t> ones(n.size(), 0);
  const std::size_t batches = 96;
  std::vector<std::uint64_t> values;
  for (std::size_t b = 0; b < batches; ++b) {
    sim.simulate(sim.random_batch(rng), values);
    for (NodeId v = 0; v < n.size(); ++v) {
      ones[v] += static_cast<std::uint32_t>(std::popcount(values[v]));
    }
  }
  const double total = 64.0 * static_cast<double>(batches);
  for (NodeId v = 0; v < n.size(); ++v) {
    const double measured = ones[v] / total;
    EXPECT_NEAR(measured, m.prob_one[v], 0.05) << "node " << v;
  }
}

TEST(Cop, ObservabilityMatchesSimulationOnTrees) {
  Rng rng(103);
  const Netlist n = random_tree(rng, 40);
  const auto m = compute_cop(n);

  LogicSimulator sim(n);
  FaultSimulator probe(sim);
  std::vector<std::uint32_t> observed(n.size(), 0);
  const std::size_t batches = 96;
  std::vector<std::uint64_t> values;
  for (std::size_t b = 0; b < batches; ++b) {
    sim.simulate(sim.random_batch(rng), values);
    for (NodeId v = 0; v < n.size(); ++v) {
      if (is_sink(n.type(v))) continue;
      observed[v] += static_cast<std::uint32_t>(
          std::popcount(probe.observe_word(v, values)));
    }
  }
  const double total = 64.0 * static_cast<double>(batches);
  for (NodeId v = 0; v < n.size(); ++v) {
    if (is_sink(n.type(v))) continue;
    EXPECT_NEAR(observed[v] / total, m.observability[v], 0.06)
        << "node " << v;
  }
}

}  // namespace
}  // namespace gcnt
