// .bench reader/writer: parsing, error reporting, round-trips.

#include <gtest/gtest.h>

#include "netlist/bench_io.h"

namespace gcnt {
namespace {

constexpr const char* kC17 = R"(# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

TEST(BenchIo, ParsesC17) {
  const Netlist n = read_bench_string(kC17, "c17");
  EXPECT_EQ(n.primary_inputs().size(), 5u);
  EXPECT_EQ(n.primary_outputs().size(), 2u);
  EXPECT_EQ(n.size(), 5u + 2u + 6u);
  EXPECT_TRUE(n.validate().empty());
}

TEST(BenchIo, SignalNamesPreserved) {
  const Netlist n = read_bench_string(kC17);
  bool found = false;
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == "G22") {
      found = true;
      EXPECT_EQ(n.type(v), CellType::kNand);
      EXPECT_EQ(n.fanins(v).size(), 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchIo, RoundTripIsIsomorphic) {
  const Netlist original = read_bench_string(kC17, "c17");
  const Netlist reparsed =
      read_bench_string(write_bench_string(original), "c17rt");
  EXPECT_EQ(reparsed.size(), original.size());
  EXPECT_EQ(reparsed.edge_count(), original.edge_count());
  EXPECT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  EXPECT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
  EXPECT_TRUE(reparsed.validate().empty());
}

TEST(BenchIo, DffSupported) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
OUTPUT(q)
q = DFF(a)
)");
  EXPECT_EQ(n.flip_flops().size(), 1u);
  EXPECT_TRUE(n.validate().empty());
}

TEST(BenchIo, ObserveExtensionRoundTrips) {
  Netlist n = read_bench_string(kC17, "c17");
  // Observe G10's output.
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == "G10") {
      n.insert_observe_point(v);
      break;
    }
  }
  const Netlist reparsed = read_bench_string(write_bench_string(n));
  EXPECT_EQ(reparsed.observe_points().size(), 1u);
  EXPECT_TRUE(reparsed.validate().empty());
}

TEST(BenchIo, CommentsAndBlanksIgnored) {
  const Netlist n = read_bench_string(R"(
# leading comment

INPUT(a)   # trailing comment
INPUT(b)
OUTPUT(y)

y = AND(a, b)
)");
  EXPECT_EQ(n.size(), 4u);
}

TEST(BenchIo, BuffAliasAccepted) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = BUFF(a)
)");
  EXPECT_TRUE(n.validate().empty());
}

TEST(BenchIo, UndefinedSignalThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n"),
               std::runtime_error);
}

TEST(BenchIo, RedefinitionThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nINPUT(a)\n"), std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\na = NOT(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, UnknownGateThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = MAJ3(a, a, a)\n"),
               std::runtime_error);
}

TEST(BenchIo, BadArityThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = AND(a)\n"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n"),
               std::runtime_error);
}

TEST(BenchIo, MalformedLineThrows) {
  EXPECT_THROW(read_bench_string("WIBBLE\n"), std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT a\n"), std::runtime_error);
}

TEST(BenchIo, ErrorMessageCarriesLineNumber) {
  try {
    read_bench_string("INPUT(a)\n\ny = AND(a, ghost)\nOUTPUT(y)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace gcnt
