// Crash-safety and hardened-I/O suite: CRC32C vectors, the artifact
// envelope, deterministic fault injection, checkpoint/resume bit-identity
// (kill at every epoch, across thread counts), and OPI journal replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/artifact.h"
#include "common/error.h"
#include "common/fault_inject.h"
#include "common/parallel.h"
#include "data/dataset.h"
#include "dft/flow_journal.h"
#include "dft/gcn_opi.h"
#include "gcn/checkpoint.h"
#include "gcn/serialize.h"
#include "gcn/trainer.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"

namespace gcnt {
namespace {

/// RAII: no fault spec leaks into the next test even on early exit.
struct FaultGuard {
  ~FaultGuard() { clear_fault_injection(); }
};

ErrorKind kind_of(const std::function<void()>& op) {
  try {
    op();
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected gcnt::Error";
  return ErrorKind::kInternal;
}

// ---- CRC32C ---------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // Castagnoli check value (RFC 3720 appendix B.4 / Intel SSE4.2).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Crc32c, ChainingMatchesOneShot) {
  const std::string text = "graph convolutional networks";
  const std::uint32_t whole = crc32c(text.data(), text.size());
  const std::uint32_t first = crc32c(text.data(), 10);
  EXPECT_EQ(crc32c(text.data() + 10, text.size() - 10, first), whole);
}

TEST(Crc32c, SingleBitChangesValue) {
  std::string text = "abcdefgh";
  const std::uint32_t before = crc32c(text.data(), text.size());
  text[3] ^= 1;
  EXPECT_NE(crc32c(text.data(), text.size()), before);
}

// ---- Artifact envelope ----------------------------------------------------

TEST(Artifact, RoundTrip) {
  const std::string path = "robustness_artifact.bin";
  const std::string payload = "payload with\nnewlines and \0 bytes";
  write_artifact_file(path, "demo", payload);
  EXPECT_TRUE(is_artifact_file(path));
  EXPECT_EQ(read_artifact_file(path, "demo"), payload);
  std::remove(path.c_str());
}

TEST(Artifact, WrongKindRejected) {
  const std::string path = "robustness_kind.bin";
  write_artifact_file(path, "model", "x");
  EXPECT_EQ(kind_of([&] { read_artifact_file(path, "checkpoint"); }),
            ErrorKind::kCorrupt);
  std::remove(path.c_str());
}

TEST(Artifact, MissingFileIsIo) {
  EXPECT_EQ(kind_of([] { read_artifact_file("/nonexistent/a.bin", "x"); }),
            ErrorKind::kIo);
}

TEST(Artifact, FutureVersionRejected) {
  const std::string path = "robustness_version.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "gcnt-artifact v99 demo 1 00000000\nx";
  }
  EXPECT_EQ(kind_of([&] { read_artifact_file(path, "demo"); }),
            ErrorKind::kVersion);
  std::remove(path.c_str());
}

TEST(Artifact, TruncationRejected) {
  const std::string path = "robustness_trunc.bin";
  write_artifact_file(path, "demo", "0123456789abcdef");
  std::ifstream in(path, std::ios::binary);
  std::stringstream whole;
  whole << in.rdbuf();
  in.close();
  std::string text = whole.str();
  text.resize(text.size() - 5);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_EQ(kind_of([&] { read_artifact_file(path, "demo"); }),
            ErrorKind::kCorrupt);
  std::remove(path.c_str());
}

TEST(Artifact, BitFlipRejected) {
  const std::string path = "robustness_flip.bin";
  write_artifact_file(path, "demo", "0123456789abcdef");
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-3, std::ios::end);
    const char original = static_cast<char>(file.peek());
    file.put(static_cast<char>(original ^ 0x10));
  }
  EXPECT_EQ(kind_of([&] { read_artifact_file(path, "demo"); }),
            ErrorKind::kCorrupt);
  std::remove(path.c_str());
}

// ---- Fault injection ------------------------------------------------------

TEST(FaultInject, SpecParsing) {
  const FaultSpec spec = parse_fault_spec(
      "fail-write:nth=3;short-write:nth=1,bytes=40;"
      "bitflip-read:nth=2,seed=7;alloc-fail:nth=5");
  EXPECT_EQ(spec.fail_write_nth, 3u);
  EXPECT_EQ(spec.short_write_nth, 1u);
  EXPECT_EQ(spec.short_write_bytes, 40u);
  EXPECT_EQ(spec.bitflip_read_nth, 2u);
  EXPECT_EQ(spec.bitflip_seed, 7u);
  EXPECT_EQ(spec.alloc_fail_nth, 5u);
  EXPECT_TRUE(spec.armed());
  EXPECT_FALSE(FaultSpec{}.armed());
}

TEST(FaultInject, BadSpecIsUsageError) {
  EXPECT_EQ(kind_of([] { parse_fault_spec("explode:nth=1"); }),
            ErrorKind::kUsage);
  EXPECT_EQ(kind_of([] { parse_fault_spec("fail-write:count=1"); }),
            ErrorKind::kUsage);
  EXPECT_EQ(kind_of([] { parse_fault_spec("fail-write"); }),
            ErrorKind::kUsage);
  EXPECT_EQ(kind_of([] { parse_fault_spec("fail-write:nth=zebra"); }),
            ErrorKind::kUsage);
}

TEST(FaultInject, FailWritePreservesPreviousContents) {
  FaultGuard guard;
  const std::string path = "robustness_failwrite.bin";
  write_artifact_file(path, "demo", "generation one");

  FaultSpec spec;
  spec.fail_write_nth = 1;
  set_fault_spec(spec);
  EXPECT_EQ(kind_of([&] { write_artifact_file(path, "demo", "generation two"); }),
            ErrorKind::kIo);
  clear_fault_injection();

  // The injected failure happened before the rename: the old artifact is
  // intact, not torn.
  EXPECT_EQ(read_artifact_file(path, "demo"), "generation one");
  std::remove(path.c_str());
}

TEST(FaultInject, ShortWriteTornArtifactRejected) {
  FaultGuard guard;
  const std::string path = "robustness_shortwrite.bin";
  FaultSpec spec;
  spec.short_write_nth = 1;
  set_fault_spec(spec);
  write_artifact_file(path, "demo", "a payload long enough to truncate");
  clear_fault_injection();

  // The torn artifact was renamed into place, so it exists — and the
  // checksum/length verification must refuse it.
  EXPECT_EQ(kind_of([&] { read_artifact_file(path, "demo"); }),
            ErrorKind::kCorrupt);
  std::remove(path.c_str());
}

TEST(FaultInject, BitflipReadDetectedByChecksum) {
  FaultGuard guard;
  const std::string path = "robustness_bitflip.bin";
  write_artifact_file(path, "demo", "stable bytes on disk");

  FaultSpec spec;
  spec.bitflip_read_nth = 1;
  spec.bitflip_seed = 99;
  set_fault_spec(spec);
  EXPECT_EQ(kind_of([&] { read_artifact_file(path, "demo"); }),
            ErrorKind::kCorrupt);
  clear_fault_injection();

  // The flip happened in memory; on disk the artifact is still good.
  EXPECT_EQ(read_artifact_file(path, "demo"), "stable bytes on disk");
  std::remove(path.c_str());
}

TEST(FaultInject, AllocFailureIsResourceError) {
  FaultGuard guard;
  GcnConfig config;
  config.depth = 1;
  config.embed_dims = {4};
  config.fc_dims = {4};
  GcnModel model(config);
  const std::string path = "robustness_allocfail.txt";
  save_model_file(model, path);

  FaultSpec spec;
  spec.alloc_fail_nth = 1;
  set_fault_spec(spec);
  EXPECT_EQ(kind_of([&] { load_model_file(path); }), ErrorKind::kResource);
  clear_fault_injection();
  std::remove(path.c_str());
}

// ---- Error taxonomy -------------------------------------------------------

TEST(Errors, ExitCodeMapping) {
  EXPECT_EQ(exit_code_for(ErrorKind::kUsage), 64);
  EXPECT_EQ(exit_code_for(ErrorKind::kCorrupt), 65);
  EXPECT_EQ(exit_code_for(ErrorKind::kVersion), 65);
  EXPECT_EQ(exit_code_for(ErrorKind::kInternal), 70);
  EXPECT_EQ(exit_code_for(ErrorKind::kResource), 71);
  EXPECT_EQ(exit_code_for(ErrorKind::kIo), 74);
}

TEST(Errors, NamesAndRuntimeErrorCompatibility) {
  EXPECT_STREQ(error_kind_name(ErrorKind::kIo), "io");
  EXPECT_STREQ(error_kind_name(ErrorKind::kCorrupt), "corrupt");
  const Error error(ErrorKind::kVersion, "too new");
  EXPECT_EQ(error.kind(), ErrorKind::kVersion);
  // Existing catch sites expect std::runtime_error.
  EXPECT_THROW(throw Error(ErrorKind::kIo, "x"), std::runtime_error);
}

// ---- Checkpoint / resume --------------------------------------------------

GeneratorConfig tiny_design(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = 400;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.flip_flops = 16;
  return config;
}

GcnConfig tiny_model_config() {
  GcnConfig config;
  config.depth = 1;
  config.embed_dims = {8};
  config.fc_dims = {8};
  config.seed = 77;
  return config;
}

TrainerOptions tiny_train_options() {
  TrainerOptions options;
  options.epochs = 5;
  options.learning_rate = 1e-2f;
  options.positive_class_weight = 4.0f;
  options.eval_interval = 2;
  return options;
}

std::string model_fingerprint(const GcnModel& model) {
  std::ostringstream text;
  save_model(model, text);
  return text.str();
}

/// Shared tiny dataset — built once, the expensive part of this suite.
class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LabelerOptions labeler;
    labeler.batches = 4;
    dataset_ = new Dataset(
        make_dataset(generate_circuit(tiny_design(91)), labeler));
    dataset_->tensors.standardize_features();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static TrainGraph data() { return TrainGraph{&dataset_->tensors, {}}; }

  static Dataset* dataset_;
};

Dataset* ResumeTest::dataset_ = nullptr;

TEST_F(ResumeTest, CheckpointRoundTripRestoresEveryField) {
  const std::string path = "robustness_ckpt_roundtrip.ckpt";
  TrainerOptions options = tiny_train_options();
  options.checkpoint_path = path;
  GcnModel model(tiny_model_config());
  Trainer trainer(model, options);
  const TrainGraph graph = data();
  const auto history = trainer.train({graph}, nullptr);

  const TrainCheckpoint checkpoint = load_checkpoint_file(path);
  EXPECT_EQ(checkpoint.next_epoch, options.epochs);
  EXPECT_EQ(checkpoint.optimizer_kind, "adam");
  EXPECT_GT(checkpoint.optimizer_step_count, 0);
  EXPECT_FALSE(checkpoint.optimizer_state.empty());
  ASSERT_EQ(checkpoint.history.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(checkpoint.history[i].epoch, history[i].epoch);
    EXPECT_EQ(checkpoint.history[i].loss, history[i].loss);
  }
  EXPECT_EQ(checkpoint.model_text, model_fingerprint(model));
  std::remove(path.c_str());
}

// The core bit-identity claim: kill training at EVERY epoch boundary (an
// injected resource fault at the start of epoch k), resume, and require
// the final weights to match an uninterrupted run byte for byte — at one
// thread and at eight (the kernels are bitwise thread-count-invariant).
TEST_F(ResumeTest, KillAtEveryEpochResumesBitIdentical) {
  FaultGuard guard;
  const std::string path = "robustness_ckpt_kill.ckpt";
  const TrainGraph graph = data();

  TrainerOptions plain = tiny_train_options();
  GcnModel reference(tiny_model_config());
  Trainer reference_trainer(reference, plain);
  reference_trainer.train({graph}, nullptr);
  const std::string expected = model_fingerprint(reference);
  const std::size_t epochs = plain.epochs;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    set_kernel_threads(threads);
    for (std::size_t kill_epoch = 1; kill_epoch < epochs; ++kill_epoch) {
      std::remove(path.c_str());
      TrainerOptions options = tiny_train_options();
      options.checkpoint_path = path;

      // Crash: the trainer's epoch-boundary alloc probe fires at the
      // start of epoch `kill_epoch` (1-based probe count), after epochs
      // [0, kill_epoch) completed and checkpointed.
      GcnModel victim(tiny_model_config());
      Trainer victim_trainer(victim, options);
      FaultSpec spec;
      spec.alloc_fail_nth = kill_epoch + 1;
      set_fault_spec(spec);
      try {
        victim_trainer.train({graph}, nullptr);
        FAIL() << "expected injected crash at epoch " << kill_epoch;
      } catch (const Error& e) {
        EXPECT_EQ(e.kind(), ErrorKind::kResource);
      }
      clear_fault_injection();

      // Resume in a fresh process-equivalent: new model object, weights
      // and optimizer state come from the checkpoint.
      GcnModel resumed(tiny_model_config());
      Trainer resumed_trainer(resumed, options);
      const auto history = resumed_trainer.resume({graph}, nullptr);
      EXPECT_EQ(history.size(), epochs);
      EXPECT_EQ(model_fingerprint(resumed), expected)
          << "divergence after kill at epoch " << kill_epoch << " with "
          << threads << " threads";
    }
  }
  set_kernel_threads(0);  // restore the default
  std::remove(path.c_str());
}

TEST_F(ResumeTest, SgdResumeAlsoBitIdentical) {
  const std::string path = "robustness_ckpt_sgd.ckpt";
  const TrainGraph graph = data();
  TrainerOptions plain = tiny_train_options();
  plain.use_adam = false;
  GcnModel reference(tiny_model_config());
  Trainer reference_trainer(reference, plain);
  reference_trainer.train({graph}, nullptr);

  TrainerOptions options = plain;
  options.checkpoint_path = path;
  options.epochs = 2;
  GcnModel partial(tiny_model_config());
  Trainer partial_trainer(partial, options);
  partial_trainer.train({graph}, nullptr);

  options.epochs = plain.epochs;
  GcnModel resumed(tiny_model_config());
  Trainer resumed_trainer(resumed, options);
  resumed_trainer.resume({graph}, nullptr);
  EXPECT_EQ(model_fingerprint(resumed), model_fingerprint(reference));
  std::remove(path.c_str());
}

TEST_F(ResumeTest, ResumeWithoutCheckpointFallsBackToFreshTrain) {
  const std::string path = "robustness_ckpt_missing.ckpt";
  std::remove(path.c_str());
  TrainerOptions options = tiny_train_options();
  options.checkpoint_path = path;
  GcnModel model(tiny_model_config());
  Trainer trainer(model, options);
  const auto history = trainer.resume({data()}, nullptr);
  EXPECT_EQ(history.size(), options.epochs);
  std::remove(path.c_str());
}

TEST_F(ResumeTest, CorruptCheckpointRejected) {
  const std::string path = "robustness_ckpt_corrupt.ckpt";
  TrainerOptions options = tiny_train_options();
  options.epochs = 2;
  options.checkpoint_path = path;
  GcnModel model(tiny_model_config());
  Trainer trainer(model, options);
  trainer.train({data()}, nullptr);

  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-20, std::ios::end);
    file.put('!');
  }
  GcnModel resumed(tiny_model_config());
  Trainer resumed_trainer(resumed, options);
  EXPECT_EQ(kind_of([&] { resumed_trainer.resume({data()}, nullptr); }),
            ErrorKind::kCorrupt);
  std::remove(path.c_str());
}

TEST_F(ResumeTest, OptimizerMismatchRejected) {
  const std::string path = "robustness_ckpt_opt.ckpt";
  TrainerOptions options = tiny_train_options();
  options.epochs = 2;
  options.checkpoint_path = path;
  GcnModel model(tiny_model_config());
  Trainer trainer(model, options);
  trainer.train({data()}, nullptr);

  TrainerOptions sgd = options;
  sgd.use_adam = false;
  GcnModel resumed(tiny_model_config());
  Trainer resumed_trainer(resumed, sgd);
  EXPECT_EQ(kind_of([&] { resumed_trainer.resume({data()}, nullptr); }),
            ErrorKind::kUsage);
  std::remove(path.c_str());
}

// ---- Flow journal ---------------------------------------------------------

TEST(FlowJournal, AppendAndResumeRoundTrip) {
  const std::string path = "robustness_journal_rt.log";
  {
    FlowJournal journal;
    journal.open(path, "opi", "designA", 400, false);
    FlowJournalRecord record;
    record.iteration = 0;
    record.entries = {{7, 0}, {12, 0}};
    journal.append(record);
    record.iteration = 1;
    record.entries = {{99, 1}};
    journal.append(record);
  }
  FlowJournal resumed;
  resumed.open(path, "opi", "designA", 400, true);
  ASSERT_EQ(resumed.records().size(), 2u);
  EXPECT_EQ(resumed.records()[0].entries.size(), 2u);
  EXPECT_EQ(resumed.records()[1].iteration, 1u);
  EXPECT_EQ(resumed.records()[1].entries[0].first, 99u);
  EXPECT_EQ(resumed.records()[1].entries[0].second, 1);
  resumed.remove();
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(FlowJournal, TornTailTruncatedOnResume) {
  const std::string path = "robustness_journal_torn.log";
  {
    FlowJournal journal;
    journal.open(path, "opi", "designA", 400, false);
    FlowJournalRecord record;
    record.iteration = 0;
    record.entries = {{3, 0}};
    journal.append(record);
  }
  {
    // Simulate a crash mid-append: bytes without a valid checksum line.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "I 1 4 17:0 21";
  }
  FlowJournal resumed;
  resumed.open(path, "opi", "designA", 400, true);
  EXPECT_EQ(resumed.records().size(), 1u);
  // The tail was truncated: appending must continue cleanly.
  FlowJournalRecord record;
  record.iteration = 1;
  record.entries = {{17, 0}};
  resumed.append(record);
  resumed.close();

  FlowJournal reread;
  reread.open(path, "opi", "designA", 400, true);
  EXPECT_EQ(reread.records().size(), 2u);
  reread.remove();
}

TEST(FlowJournal, WrongDesignRejectedAsUsage) {
  const std::string path = "robustness_journal_design.log";
  {
    FlowJournal journal;
    journal.open(path, "opi", "designA", 400, false);
  }
  FlowJournal resumed;
  EXPECT_EQ(kind_of([&] { resumed.open(path, "opi", "designB", 400, true); }),
            ErrorKind::kUsage);
  EXPECT_EQ(kind_of([&] { resumed.open(path, "cpi", "designA", 400, true); }),
            ErrorKind::kUsage);
  EXPECT_EQ(kind_of([&] { resumed.open(path, "opi", "designA", 401, true); }),
            ErrorKind::kUsage);
  std::remove(path.c_str());
}

TEST(FlowJournal, MidFileCorruptionRejected) {
  const std::string path = "robustness_journal_mid.log";
  {
    FlowJournal journal;
    journal.open(path, "opi", "designA", 400, false);
    FlowJournalRecord record;
    record.iteration = 0;
    record.entries = {{3, 0}, {4, 0}};
    journal.append(record);
    record.iteration = 1;
    record.entries = {{5, 0}};
    journal.append(record);
  }
  // Flip a byte inside the FIRST record — not the tail — which is real
  // corruption, not a crash signature. (Torn-tail handling would treat a
  // bad line as "truncate here", so corruption detection rests on the
  // remaining bytes: a valid record after the cut means the file did not
  // end mid-append.)
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  std::string header;
  std::getline(file, header);
  const std::streampos pos = file.tellg();
  file.seekp(pos + std::streamoff(2));
  file.put('~');
  file.close();
  FlowJournal resumed;
  EXPECT_THROW(resumed.open(path, "opi", "designA", 400, true), Error);
  std::remove(path.c_str());
}

// ---- End-to-end OPI crash/resume -----------------------------------------

TEST(OpiJournal, CrashedSweepResumesToIdenticalNetlist) {
  FaultGuard guard;
  // Train a small predictor so the sweep actually inserts points.
  LabelerOptions labeler;
  labeler.batches = 8;
  Dataset dataset =
      make_dataset(generate_circuit(tiny_design(57)), labeler);
  GcnModel model(tiny_model_config());
  TrainerOptions train_options;
  train_options.epochs = 60;
  train_options.positive_class_weight = 8.0f;
  train_options.eval_interval = 100;
  Trainer trainer(model, train_options);
  const TrainGraph graph{&dataset.tensors, {}};
  trainer.train({graph}, nullptr);

  GcnOpiOptions opi;
  opi.max_iterations = 3;

  // Reference: uninterrupted sweep.
  Netlist reference = generate_circuit(tiny_design(57));
  const OpiResult expected = run_gcn_opi(reference, {&model}, opi);
  ASSERT_GT(expected.inserted.size(), 0u) << "sweep inserted nothing; the "
                                             "crash/resume check is vacuous";

  // Crash: fail the journal's second record append (probe 1 = header,
  // probe 2 = iteration 0, probe 3 = iteration 1).
  const std::string journal_path = "robustness_opi.journal";
  std::remove(journal_path.c_str());
  opi.journal_path = journal_path;
  opi.journal_design = "tiny57";
  Netlist crashed = generate_circuit(tiny_design(57));
  FaultSpec spec;
  spec.fail_write_nth = 3;
  set_fault_spec(spec);
  EXPECT_EQ(kind_of([&] { run_gcn_opi(crashed, {&model}, opi); }),
            ErrorKind::kIo);
  clear_fault_injection();
  EXPECT_TRUE(std::ifstream(journal_path).good()) << "journal must survive";

  // Resume on the ORIGINAL netlist: replay + continue.
  opi.resume = true;
  Netlist resumed = generate_circuit(tiny_design(57));
  const OpiResult actual = run_gcn_opi(resumed, {&model}, opi);

  EXPECT_EQ(actual.inserted, expected.inserted);
  EXPECT_EQ(actual.iterations, expected.iterations);
  std::ostringstream reference_text, resumed_text;
  write_bench(reference, reference_text);
  write_bench(resumed, resumed_text);
  EXPECT_EQ(resumed_text.str(), reference_text.str());
  // A completed sweep removes its journal.
  EXPECT_FALSE(std::ifstream(journal_path).good());
}

}  // namespace
}  // namespace gcnt
