// Netlist graph structure: construction, ordering, cones, validation.

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/netlist.h"

namespace gcnt {
namespace {

/// a, b -> AND g1 -> NOT g2 -> PO.
Netlist small_chain() {
  Netlist n("chain");
  const NodeId a = n.add_node(CellType::kInput, "a");
  const NodeId b = n.add_node(CellType::kInput, "b");
  const NodeId g1 = n.add_node(CellType::kAnd, "g1");
  const NodeId g2 = n.add_node(CellType::kNot, "g2");
  const NodeId po = n.add_node(CellType::kOutput, "po");
  n.connect(a, g1);
  n.connect(b, g1);
  n.connect(g1, g2);
  n.connect(g2, po);
  return n;
}

TEST(Netlist, AddNodeAssignsSequentialIds) {
  Netlist n;
  EXPECT_EQ(n.add_node(CellType::kInput), 0u);
  EXPECT_EQ(n.add_node(CellType::kAnd), 1u);
  EXPECT_EQ(n.size(), 2u);
}

TEST(Netlist, AutoNamesAreUnique) {
  Netlist n;
  const NodeId a = n.add_node(CellType::kInput);
  const NodeId b = n.add_node(CellType::kInput);
  EXPECT_NE(n.node_name(a), n.node_name(b));
}

TEST(Netlist, ConnectTracksBothDirections) {
  Netlist n = small_chain();
  EXPECT_EQ(n.fanins(2).size(), 2u);
  EXPECT_EQ(n.fanouts(0).size(), 1u);
  EXPECT_EQ(n.edge_count(), 4u);
}

TEST(Netlist, RoleListsPopulated) {
  Netlist n = small_chain();
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_TRUE(n.flip_flops().empty());
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
  Netlist n = small_chain();
  const auto order = n.topological_order();
  ASSERT_EQ(order.size(), n.size());
  std::vector<std::size_t> position(n.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId v = 0; v < n.size(); ++v) {
    for (NodeId u : n.fanins(v)) {
      EXPECT_LT(position[u], position[v]);
    }
  }
}

TEST(Netlist, CombinationalCycleThrows) {
  Netlist n;
  const NodeId g1 = n.add_node(CellType::kAnd, "g1");
  const NodeId g2 = n.add_node(CellType::kAnd, "g2");
  n.connect(g1, g2);
  n.connect(g2, g1);
  EXPECT_THROW(n.topological_order(), std::runtime_error);
}

TEST(Netlist, DffBreaksCycle) {
  // ff -> inc (NOT) -> ff : legal sequential loop.
  Netlist n;
  const NodeId ff = n.add_node(CellType::kDff, "ff");
  const NodeId inv = n.add_node(CellType::kNot, "inv");
  n.connect(ff, inv);
  n.connect(inv, ff);
  EXPECT_NO_THROW(n.topological_order());
  const auto levels = n.logic_levels();
  EXPECT_EQ(levels[ff], 0u);
  EXPECT_EQ(levels[inv], 1u);
}

TEST(Netlist, LogicLevels) {
  Netlist n = small_chain();
  const auto levels = n.logic_levels();
  EXPECT_EQ(levels[0], 0u);  // a
  EXPECT_EQ(levels[2], 1u);  // g1
  EXPECT_EQ(levels[3], 2u);  // g2
  EXPECT_EQ(levels[4], 3u);  // po
}

TEST(Netlist, FaninCone) {
  Netlist n = small_chain();
  auto cone = n.fanin_cone(3);  // g2
  std::sort(cone.begin(), cone.end());
  EXPECT_EQ(cone, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Netlist, FaninConeRespectsLimit) {
  Netlist n = small_chain();
  EXPECT_EQ(n.fanin_cone(3, 1).size(), 1u);
  EXPECT_TRUE(n.fanin_cone(3, 0).empty());
}

TEST(Netlist, FanoutCone) {
  Netlist n = small_chain();
  auto cone = n.fanout_cone(0);  // a
  std::sort(cone.begin(), cone.end());
  EXPECT_EQ(cone, (std::vector<NodeId>{2, 3, 4}));
}

TEST(Netlist, ConesStopAtSequentialBoundaries) {
  Netlist n;
  const NodeId a = n.add_node(CellType::kInput, "a");
  const NodeId ff = n.add_node(CellType::kDff, "ff");
  const NodeId g = n.add_node(CellType::kBuf, "g");
  const NodeId po = n.add_node(CellType::kOutput, "po");
  n.connect(a, ff);
  n.connect(ff, g);
  n.connect(g, po);
  // Fanout of a reaches the DFF but not through it.
  auto fwd = n.fanout_cone(a);
  EXPECT_EQ(fwd, std::vector<NodeId>{ff});
  // Fanin of g reaches the DFF but not its driver a.
  auto back = n.fanin_cone(g);
  EXPECT_EQ(back, std::vector<NodeId>{ff});
}

TEST(Netlist, InsertObservePoint) {
  Netlist n = small_chain();
  const std::size_t before = n.size();
  const NodeId op = n.insert_observe_point(2);
  EXPECT_EQ(n.size(), before + 1);
  EXPECT_EQ(n.type(op), CellType::kObserve);
  EXPECT_EQ(n.fanins(op), std::vector<NodeId>{2});
  EXPECT_EQ(n.observe_points(), std::vector<NodeId>{op});
}

TEST(Netlist, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(small_chain().validate().empty());
}

TEST(Netlist, ValidateFlagsBadArity) {
  Netlist n;
  n.add_node(CellType::kAnd, "lonely");  // 0 fanins, needs >= 2
  EXPECT_FALSE(n.validate().empty());
}

TEST(Netlist, ValidateFlagsSinkWithFanout) {
  Netlist n;
  const NodeId a = n.add_node(CellType::kInput, "a");
  const NodeId po = n.add_node(CellType::kOutput, "po");
  const NodeId g = n.add_node(CellType::kBuf, "g");
  n.connect(a, po);
  n.connect(po, g);
  EXPECT_FALSE(n.validate().empty());
}

TEST(CellTypes, ParseRoundTrip) {
  for (int i = 0; i < kCellTypeCount; ++i) {
    const auto type = static_cast<CellType>(i);
    CellType parsed;
    ASSERT_TRUE(parse_cell_type(cell_type_name(type), parsed));
    EXPECT_EQ(parsed, type);
  }
}

TEST(CellTypes, ParseAliasesAndCase) {
  CellType t;
  EXPECT_TRUE(parse_cell_type("buff", t));
  EXPECT_EQ(t, CellType::kBuf);
  EXPECT_TRUE(parse_cell_type("nand", t));
  EXPECT_EQ(t, CellType::kNand);
  EXPECT_FALSE(parse_cell_type("FROB", t));
}

TEST(CellTypes, RoleHelpers) {
  EXPECT_TRUE(is_source(CellType::kInput));
  EXPECT_TRUE(is_source(CellType::kDff));
  EXPECT_FALSE(is_source(CellType::kAnd));
  EXPECT_TRUE(is_sink(CellType::kOutput));
  EXPECT_TRUE(is_sink(CellType::kDff));
  EXPECT_TRUE(is_sink(CellType::kObserve));
  EXPECT_TRUE(is_logic(CellType::kXnor));
  EXPECT_FALSE(is_logic(CellType::kDff));
}

}  // namespace
}  // namespace gcnt
