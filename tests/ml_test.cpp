// Classical baselines: cone features and the four Table-2 models.

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "gcn/graph_tensors.h"
#include "ml/features.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "netlist/bench_io.h"

namespace gcnt {
namespace {

TEST(ConeFeatures, DimensionFormula) {
  ConeFeatureOptions options;
  options.fanin_nodes = 500;
  options.fanout_nodes = 500;
  EXPECT_EQ(cone_feature_dim(options), 4004u);  // the paper's dimension
}

TEST(ConeFeatures, SelfFeaturesFirstAndPadding) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto tensors = build_graph_tensors(n);
  NodeId g = kInvalidNode;
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == "g") g = v;
  }
  ConeFeatureOptions options;
  options.fanin_nodes = 5;
  options.fanout_nodes = 5;
  const Matrix features =
      extract_cone_features(n, tensors.features, {g}, options);
  ASSERT_EQ(features.rows(), 1u);
  ASSERT_EQ(features.cols(), 44u);
  // Target's own attributes lead.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(features.at(0, c), tensors.features.at(g, c));
  }
  // Fan-in block holds a and b (2 nodes), rest zero-padded.
  float fanin_block_sum = 0.0f;
  for (std::size_t c = 4 + 8; c < 4 + 20; ++c) {
    fanin_block_sum += std::abs(features.at(0, c));
  }
  EXPECT_FLOAT_EQ(fanin_block_sum, 0.0f);  // only 2 of 5 slots used
}

TEST(ConeFeatures, FanoutBlockAtFixedOffset) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n");
  const auto tensors = build_graph_tensors(n);
  ConeFeatureOptions options;
  options.fanin_nodes = 3;
  options.fanout_nodes = 3;
  NodeId a = 0;
  const Matrix f = extract_cone_features(n, tensors.features, {a}, options);
  // a's fanout cone = {g, po}; block starts at (1 + 3) * 4 = 16.
  float fanout_sum = 0.0f;
  for (std::size_t c = 16; c < 28; ++c) fanout_sum += std::abs(f.at(0, c));
  EXPECT_GT(fanout_sum, 0.0f);
}

/// Linearly separable blobs.
void make_blobs(Matrix& x, std::vector<std::int32_t>& y, std::size_t n,
                Rng& rng) {
  x.resize(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double center = positive ? 2.0 : -2.0;
    for (std::size_t c = 0; c < 3; ++c) {
      x.at(i, c) = static_cast<float>(center + rng.normal() * 0.5);
    }
    y[i] = positive ? 1 : 0;
  }
}

/// XOR-pattern data: not linearly separable.
void make_xor(Matrix& x, std::vector<std::int32_t>& y, std::size_t n,
              Rng& rng) {
  x.resize(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool q1 = rng.chance(0.5);
    const bool q2 = rng.chance(0.5);
    x.at(i, 0) = static_cast<float>((q1 ? 1.0 : -1.0) + rng.normal() * 0.2);
    x.at(i, 1) = static_cast<float>((q2 ? 1.0 : -1.0) + rng.normal() * 0.2);
    y[i] = q1 != q2 ? 1 : 0;
  }
}

double fit_and_score(BinaryClassifier& model, const Matrix& x,
                     const std::vector<std::int32_t>& y) {
  model.fit(x, y);
  return evaluate_binary(model.predict(x), y).accuracy();
}

TEST(LogisticRegression, SeparatesBlobs) {
  Rng rng(1);
  Matrix x;
  std::vector<std::int32_t> y;
  make_blobs(x, y, 200, rng);
  LogisticRegression model;
  EXPECT_GT(fit_and_score(model, x, y), 0.97);
}

TEST(LinearSvm, SeparatesBlobs) {
  Rng rng(2);
  Matrix x;
  std::vector<std::int32_t> y;
  make_blobs(x, y, 200, rng);
  LinearSvm model;
  EXPECT_GT(fit_and_score(model, x, y), 0.97);
}

TEST(LinearModels, CannotSolveXor) {
  Rng rng(3);
  Matrix x;
  std::vector<std::int32_t> y;
  make_xor(x, y, 400, rng);
  LogisticRegression model;
  EXPECT_LT(fit_and_score(model, x, y), 0.75);  // structurally limited
}

TEST(RandomForest, SolvesXor) {
  Rng rng(4);
  Matrix x;
  std::vector<std::int32_t> y;
  make_xor(x, y, 400, rng);
  RandomForest model;
  EXPECT_GT(fit_and_score(model, x, y), 0.95);
}

TEST(Mlp, SolvesXor) {
  Rng rng(5);
  Matrix x;
  std::vector<std::int32_t> y;
  make_xor(x, y, 400, rng);
  MlpOptions options;
  options.epochs = 120;
  MlpClassifier model(options);
  EXPECT_GT(fit_and_score(model, x, y), 0.95);
}

TEST(RandomForest, ProbabilitiesBounded) {
  Rng rng(6);
  Matrix x;
  std::vector<std::int32_t> y;
  make_blobs(x, y, 100, rng);
  RandomForest model;
  model.fit(x, y);
  for (float p : model.predict_probability(x)) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Classifiers, LabelSizeMismatchThrows) {
  Matrix x(4, 2);
  const std::vector<std::int32_t> y{0, 1};
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(x, y), std::invalid_argument);
  RandomForest rf;
  EXPECT_THROW(rf.fit(x, y), std::invalid_argument);
  MlpClassifier mlp;
  EXPECT_THROW(mlp.fit(x, y), std::invalid_argument);
}

TEST(Classifiers, DeterministicAcrossRuns) {
  Rng rng(7);
  Matrix x;
  std::vector<std::int32_t> y;
  make_blobs(x, y, 120, rng);
  LogisticRegression a, b;
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_EQ(a.predict(x), b.predict(x));
  RandomForest fa, fb;
  fa.fit(x, y);
  fb.fit(x, y);
  EXPECT_EQ(fa.predict(x), fb.predict(x));
}

TEST(LinearModels, DecisionFunctionSignMatchesPrediction) {
  Rng rng(8);
  Matrix x;
  std::vector<std::int32_t> y;
  make_blobs(x, y, 80, rng);
  LinearSvm model;
  model.fit(x, y);
  const auto scores = model.decision_function(x);
  const auto predictions = model.predict(x);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(predictions[i], scores[i] >= 0.0f ? 1 : 0);
  }
}

}  // namespace
}  // namespace gcnt
