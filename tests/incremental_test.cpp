// Incremental dirty-cone inference (gcn/incremental.h): the equivalence
// suite pinning the bit-identity claim — incremental logits must equal a
// full GcnModel::infer after 1, 8, and 64 OP insertions, across thread
// counts and SpMM tile widths — plus DirtyConeTracker unit tests and the
// OPI/CPI end-to-end incremental-vs-full comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "cop/cop.h"
#include "data/labeler.h"
#include "dft/gcn_cpi.h"
#include "dft/gcn_opi.h"
#include "gcn/graph_tensors.h"
#include "gcn/incremental.h"
#include "gcn/model.h"
#include "gcn/trainer.h"
#include "gen/generator.h"
#include "netlist/netlist.h"
#include "scoap/scoap.h"
#include "tensor/sparse.h"

namespace gcnt {
namespace {

Netlist test_netlist(std::uint64_t seed, std::size_t gates = 2000) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = gates;
  config.primary_inputs = 30;
  config.primary_outputs = 12;
  config.flip_flops = 32;
  return generate_circuit(config);
}

GcnConfig small_config(int depth = 3) {
  GcnConfig config;
  config.depth = depth;
  config.embed_dims = {8, 12, 16};
  config.embed_dims.resize(depth);
  config.fc_dims = {16};
  config.seed = 77;
  return config;
}

/// Valid OP targets in the OPI sense: drive a real signal and do not
/// already feed an observation point.
std::vector<NodeId> op_targets(const Netlist& netlist, std::size_t count) {
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < netlist.size() && targets.size() < count; ++v) {
    const CellType t = netlist.type(v);
    if (is_sink(t) || t == CellType::kInput) continue;
    targets.push_back(v);
  }
  return targets;
}

/// Applies `count` OP insertions exactly as run_gcn_opi does (netlist
/// mutation, SCOAP repair, append_observe_point, tracker records) and
/// returns the rebuilt tensors ready for prediction.
void insert_ops(Netlist& netlist, GraphTensors& tensors, ScoapMeasures& scoap,
                std::vector<std::uint32_t>& levels,
                const std::vector<NodeId>& targets, DirtyConeTracker& tracker) {
  for (const NodeId target : targets) {
    const NodeId op = netlist.insert_observe_point(target);
    update_observability_after_observe(netlist, target, scoap);
    levels.resize(netlist.size(), 0);
    levels[op] = levels[target] + 1;
    const std::vector<NodeId> cone = netlist.fanin_cone(target);
    std::vector<NodeId> changed_rows;
    append_observe_point(tensors, netlist, target, op, scoap, cone,
                         &changed_rows);
    tracker.record_new_node(op);
    tracker.record_edge(target, op);
    for (NodeId v : changed_rows) tracker.record_feature(v);
  }
  tensors.rebuild_csr();
}

TEST(DirtyCone, AffectedIsSortedClosureOverBothDirections) {
  const Netlist netlist = test_netlist(11, 300);
  const GraphTensors tensors = build_graph_tensors(netlist);
  // Pick a gate with both fanins and fanouts as the seed.
  NodeId seed = kInvalidNode;
  for (NodeId v = 0; v < netlist.size(); ++v) {
    if (!netlist.fanins(v).empty() && !netlist.fanouts(v).empty()) {
      seed = v;
      break;
    }
  }
  ASSERT_NE(seed, kInvalidNode);

  DirtyConeTracker tracker;
  tracker.record_feature(seed);
  const auto zero_hop = tracker.affected(tensors, 0);
  EXPECT_EQ(zero_hop, std::vector<NodeId>{seed});

  const auto one_hop = tracker.affected(tensors, 1);
  EXPECT_TRUE(std::is_sorted(one_hop.begin(), one_hop.end()));
  // Exactly the seed plus its immediate fanins and fanouts.
  std::vector<NodeId> expected{seed};
  for (NodeId u : netlist.fanins(seed)) expected.push_back(u);
  for (NodeId w : netlist.fanouts(seed)) expected.push_back(w);
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(one_hop, expected);

  // Deeper closures are supersets and monotone in depth.
  const auto two_hop = tracker.affected(tensors, 2);
  EXPECT_GE(two_hop.size(), one_hop.size());
  EXPECT_TRUE(std::includes(two_hop.begin(), two_hop.end(), one_hop.begin(),
                            one_hop.end()));
}

TEST(DirtyCone, SeedOutOfRangeThrows) {
  const Netlist netlist = test_netlist(12, 100);
  const GraphTensors tensors = build_graph_tensors(netlist);
  DirtyConeTracker tracker;
  tracker.record_feature(static_cast<NodeId>(netlist.size()));
  EXPECT_THROW(tracker.affected(tensors, 2), std::out_of_range);
}

TEST(DirtyCone, StaleCsrThrows) {
  const Netlist netlist = test_netlist(13, 100);
  GraphTensors tensors = build_graph_tensors(netlist);
  // Grow the COO beyond the built CSR without rebuilding.
  tensors.features.resize(netlist.size() + 1, kNodeFeatureDim);
  DirtyConeTracker tracker;
  tracker.record_feature(0);
  EXPECT_THROW(tracker.affected(tensors, 1), std::invalid_argument);
}

TEST(DirtyCone, ClearForgetsSeeds) {
  DirtyConeTracker tracker;
  tracker.record_edge(1, 2);
  EXPECT_FALSE(tracker.empty());
  EXPECT_EQ(tracker.seed_count(), 2u);
  tracker.clear();
  EXPECT_TRUE(tracker.empty());
}

TEST(Incremental, RefreshMatchesInferBitwise) {
  const Netlist netlist = test_netlist(21);
  const GraphTensors tensors = build_graph_tensors(netlist);
  const GcnModel model(small_config());
  IncrementalGcnEngine engine(model);
  const Matrix& logits = engine.refresh(tensors);
  EXPECT_EQ(logits, model.infer(tensors));  // bitwise, not approximate
  EXPECT_EQ(engine.positive_probability(),
            model.predict_positive_probability(tensors));
}

/// The core equivalence matrix from the issue: incremental logits ==
/// full-infer logits after 1, 8, and 64 OP insertions, for GCNT_THREADS in
/// {1, 8} and SpMM tile widths {one tile, many tiles}.
TEST(Incremental, UpdateMatchesFullInferAcrossThreadsAndTiles) {
  for (const std::size_t insertions : {1u, 8u, 64u}) {
    for (const int threads : {1, 8}) {
      for (const std::size_t tile :
           {std::numeric_limits<std::size_t>::max(), std::size_t{3}}) {
        set_kernel_threads(threads);
        set_spmm_tile_cols(tile);

        Netlist netlist = test_netlist(31);
        ScoapMeasures scoap = compute_scoap(netlist);
        std::vector<std::uint32_t> levels = netlist.logic_levels();
        GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
        const GcnModel model(small_config());
        // Fallback disabled: force the incremental path even at 64
        // insertions so the subset kernels themselves are what is tested.
        IncrementalGcnEngine engine(model, IncrementalGcnOptions{2.0});
        engine.refresh(tensors);

        DirtyConeTracker tracker;
        const auto targets = op_targets(netlist, insertions);
        ASSERT_EQ(targets.size(), insertions);
        insert_ops(netlist, tensors, scoap, levels, targets, tracker);

        const auto dirty = tracker.affected(tensors, model.config().depth);
        engine.update(tensors, dirty);
        EXPECT_FALSE(engine.last_was_full());
        EXPECT_EQ(engine.last_dirty_rows(), dirty.size());
        EXPECT_EQ(engine.logits(), model.infer(tensors))
            << "insertions=" << insertions << " threads=" << threads
            << " tile=" << tile;

        set_kernel_threads(0);
        set_spmm_tile_cols(0);
      }
    }
  }
}

TEST(Incremental, RepeatedUpdateBatchesStayIdentical) {
  // Several update() rounds in sequence (as the OPI loop performs) must
  // keep the cache exact: compare against a full infer after each batch.
  Netlist netlist = test_netlist(41);
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
  const GcnModel model(small_config(2));
  IncrementalGcnEngine engine(model, IncrementalGcnOptions{2.0});
  engine.refresh(tensors);

  auto all_targets = op_targets(netlist, 24);
  ASSERT_EQ(all_targets.size(), 24u);
  for (int round = 0; round < 3; ++round) {
    DirtyConeTracker tracker;
    const std::vector<NodeId> batch(all_targets.begin() + round * 8,
                                    all_targets.begin() + (round + 1) * 8);
    insert_ops(netlist, tensors, scoap, levels, batch, tracker);
    engine.update(tensors, tracker.affected(tensors, model.config().depth));
    EXPECT_FALSE(engine.last_was_full());
    EXPECT_EQ(engine.logits(), model.infer(tensors)) << "round=" << round;
  }
}

TEST(Incremental, FallsBackAboveDirtyFractionThreshold) {
  const Netlist netlist = test_netlist(51, 400);
  const GraphTensors tensors = build_graph_tensors(netlist);
  const GcnModel model(small_config(2));
  IncrementalGcnEngine engine(model, IncrementalGcnOptions{0.0});
  engine.refresh(tensors);
  // Any non-empty dirty set exceeds a 0.0 threshold -> full fallback.
  engine.update(tensors, {0});
  EXPECT_TRUE(engine.last_was_full());
  EXPECT_EQ(engine.logits(), model.infer(tensors));
}

TEST(Incremental, UpdateWithoutCacheRunsFullForward) {
  const Netlist netlist = test_netlist(52, 300);
  const GraphTensors tensors = build_graph_tensors(netlist);
  const GcnModel model(small_config(2));
  IncrementalGcnEngine engine(model);
  engine.update(tensors, {1, 2, 3});
  EXPECT_TRUE(engine.last_was_full());
  EXPECT_EQ(engine.logits(), model.infer(tensors));
}

TEST(Incremental, UpdateValidatesInputs) {
  const Netlist netlist = test_netlist(53, 300);
  GraphTensors tensors = build_graph_tensors(netlist);
  const GcnModel model(small_config(2));
  IncrementalGcnEngine engine(model, IncrementalGcnOptions{2.0});
  engine.refresh(tensors);
  EXPECT_THROW(
      engine.update(tensors, {static_cast<NodeId>(netlist.size())}),
      std::out_of_range);
  // Grown features without rebuild_csr -> stale CSR must be rejected.
  Matrix grown(tensors.features.rows() + 1, kNodeFeatureDim);
  for (std::size_t r = 0; r < tensors.features.rows(); ++r) {
    for (std::size_t c = 0; c < kNodeFeatureDim; ++c) {
      grown.at(r, c) = tensors.features.at(r, c);
    }
  }
  tensors.features = std::move(grown);
  EXPECT_THROW(engine.update(tensors, {0}), std::invalid_argument);
}

TEST(Incremental, OpiFlowIdenticalWithAndWithoutIncremental) {
  // End-to-end pin: the full OPI loop makes exactly the same decisions
  // whether predictions come from the incremental engine or from scratch.
  const GcnModel model(small_config());
  GcnOpiOptions options;
  options.max_iterations = 3;
  options.insert_fraction = 0.2;

  Netlist full_netlist = test_netlist(61, 600);
  Netlist incremental_netlist = full_netlist;
  options.incremental = false;
  const OpiResult full = run_gcn_opi(full_netlist, {&model}, options);
  options.incremental = true;
  const OpiResult incremental =
      run_gcn_opi(incremental_netlist, {&model}, options);

  EXPECT_EQ(full.inserted, incremental.inserted);
  EXPECT_EQ(full.iterations, incremental.iterations);
  EXPECT_EQ(full.final_positive_predictions,
            incremental.final_positive_predictions);
  EXPECT_GT(incremental.inserted.size(), 0u);
}

TEST(Incremental, CpiFlowIdenticalWithAndWithoutIncremental) {
  Netlist full_netlist = test_netlist(62, 500);
  Netlist incremental_netlist = full_netlist;

  // A briefly trained difficult-to-control classifier: an untrained model
  // may predict no positives at all, which would make this test vacuous.
  GraphTensors train_tensors = build_graph_tensors(full_netlist);
  train_tensors.labels = label_difficult_to_control(
      full_netlist, compute_cop(full_netlist), 0.02);
  GcnModel model(small_config(2));
  TrainerOptions trainer_options;
  trainer_options.epochs = 60;
  trainer_options.learning_rate = 1e-2f;
  trainer_options.positive_class_weight = 6.0f;
  trainer_options.eval_interval = trainer_options.epochs;
  Trainer trainer(model, trainer_options);
  const TrainGraph data{&train_tensors, {}};
  trainer.train({data}, nullptr);

  GcnCpiOptions options;
  options.max_iterations = 2;
  options.insert_fraction = 0.2;
  options.incremental = false;
  const GcnCpiResult full = run_gcn_cpi(full_netlist, {&model}, options);
  options.incremental = true;
  const GcnCpiResult incremental =
      run_gcn_cpi(incremental_netlist, {&model}, options);

  EXPECT_GT(full.inserted.size(), 0u);
  ASSERT_EQ(full.inserted.size(), incremental.inserted.size());
  for (std::size_t i = 0; i < full.inserted.size(); ++i) {
    EXPECT_EQ(full.inserted[i].control, incremental.inserted[i].control);
    EXPECT_EQ(full.inserted[i].gate, incremental.inserted[i].gate);
    EXPECT_EQ(full.inserted[i].inverter, incremental.inserted[i].inverter);
  }
  EXPECT_EQ(full.iterations, incremental.iterations);
  EXPECT_EQ(full.final_positive_predictions,
            incremental.final_positive_predictions);
}

TEST(Incremental, RcmReorderingKeepsIncrementalBitIdentical) {
  // Under RCM reordering the cached embeddings live in compute row order
  // and appended nodes extend the permutation with an identity tail; the
  // incremental path must stay bit-identical to a full infer, which in
  // turn must match a never-reordered run.
  set_graph_reorder(GraphReorder::kRcm);
  Netlist netlist = test_netlist(51, 1200);
  ScoapMeasures scoap = compute_scoap(netlist);
  std::vector<std::uint32_t> levels = netlist.logic_levels();
  GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
  reset_graph_reorder();
  ASSERT_TRUE(tensors.reordered());

  const GcnModel model(small_config(2));
  IncrementalGcnEngine engine(model, IncrementalGcnOptions{2.0});
  engine.refresh(tensors);
  EXPECT_EQ(engine.logits(), model.infer(tensors));

  DirtyConeTracker tracker;
  const auto targets = op_targets(netlist, 12);
  ASSERT_EQ(targets.size(), 12u);
  insert_ops(netlist, tensors, scoap, levels, targets, tracker);
  ASSERT_TRUE(tensors.reordered());  // identity-tail extension survived

  const auto dirty = tracker.affected(tensors, model.config().depth);
  engine.update(tensors, dirty);
  EXPECT_FALSE(engine.last_was_full());
  EXPECT_EQ(engine.logits(), model.infer(tensors));

  // Same graph rebuilt without any reordering: logits agree bitwise.
  GraphTensors plain = tensors;
  plain.compute_row.clear();
  plain.compute_node.clear();
  set_graph_reorder(GraphReorder::kOff);
  plain.rebuild_csr();
  reset_graph_reorder();
  ASSERT_FALSE(plain.reordered());
  EXPECT_EQ(engine.logits(), model.infer(plain));
}

}  // namespace
}  // namespace gcnt
