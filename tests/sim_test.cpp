// Logic simulation (truth tables, bit-parallel semantics) and fault
// simulation (manual cases + brute-force equivalence property).

#include <gtest/gtest.h>

#include <bit>

#include "common/parallel.h"
#include "common/rng.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"

namespace gcnt {
namespace {

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

/// Simulates a 2-input gate over all four patterns packed in one word:
/// bit k has a = k&1, b = k>>1.
std::uint64_t truth_table_2in(const std::string& gate) {
  const Netlist n = read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = " +
                                      gate + "(a, b)\n");
  LogicSimulator sim(n);
  PatternBatch batch(2);
  batch[0] = 0b1010;  // a = bit k of pattern index k
  batch[1] = 0b1100;  // b = bit k>>1
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  return values[by_name(n, "g")] & 0xF;
}

TEST(LogicSim, TwoInputTruthTables) {
  EXPECT_EQ(truth_table_2in("AND"), 0b1000u);
  EXPECT_EQ(truth_table_2in("OR"), 0b1110u);
  EXPECT_EQ(truth_table_2in("NAND"), 0b0111u);
  EXPECT_EQ(truth_table_2in("NOR"), 0b0001u);
  EXPECT_EQ(truth_table_2in("XOR"), 0b0110u);
  EXPECT_EQ(truth_table_2in("XNOR"), 0b1001u);
}

TEST(LogicSim, NotAndBuf) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = BUF(a)\n");
  LogicSimulator sim(n);
  PatternBatch batch{0b01};
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  EXPECT_EQ(values[by_name(n, "x")] & 0x3, 0b10u);
  EXPECT_EQ(values[by_name(n, "y")] & 0x3, 0b01u);
}

TEST(LogicSim, ThreeInputGate) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g)\ng = XOR(a, b, c)\n");
  LogicSimulator sim(n);
  PatternBatch batch(3);
  batch[0] = 0b10101010;
  batch[1] = 0b11001100;
  batch[2] = 0b11110000;
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  EXPECT_EQ(values[by_name(n, "g")] & 0xFF, 0b10010110u);
}

TEST(LogicSim, DffOutputIsScanLoadedNotD) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = BUF(q)\n");
  LogicSimulator sim(n);
  ASSERT_EQ(sim.sources().size(), 2u);  // a and q
  PatternBatch batch(2);
  batch[0] = 0x0;  // a = 0 everywhere
  batch[1] = ~0ULL;  // q scan-loaded to 1
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  EXPECT_EQ(values[by_name(n, "y")], ~0ULL);  // sees the scan value
}

TEST(LogicSim, SourceAndSinkEnumeration) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(g)\nq = DFF(g)\ng = AND(a, b)\n");
  LogicSimulator sim(n);
  EXPECT_EQ(sim.sources().size(), 3u);  // a, b, q
  EXPECT_EQ(sim.sinks().size(), 2u);    // PO and the DFF D pin
}

TEST(LogicSim, BatchSizeMismatchThrows) {
  const Netlist n = read_bench_string("INPUT(a)\nOUTPUT(a)\n");
  LogicSimulator sim(n);
  std::vector<std::uint64_t> values;
  EXPECT_THROW(sim.simulate(PatternBatch{}, values), std::invalid_argument);
}

TEST(FaultSim, StuckAtZeroOnAndOutput) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  PatternBatch batch(2);
  batch[0] = 0b1010;  // a
  batch[1] = 0b1100;  // b
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  // g sa0 detected only when g would be 1 (pattern 3).
  const std::uint64_t word =
      fsim.detect_word(Fault{by_name(n, "g"), false}, values);
  EXPECT_EQ(word & 0xF, 0b1000u);
  // g sa1 detected when g would be 0.
  const std::uint64_t word1 =
      fsim.detect_word(Fault{by_name(n, "g"), true}, values);
  EXPECT_EQ(word1 & 0xF, 0b0111u);
}

TEST(FaultSim, MaskedFaultNotDetected) {
  // a sa1 on AND(a, b): requires a=0 AND b=1 to detect.
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  PatternBatch batch(2);
  batch[0] = 0b1010;  // a
  batch[1] = 0b1100;  // b
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  const std::uint64_t word =
      fsim.detect_word(Fault{by_name(n, "a"), true}, values);
  EXPECT_EQ(word & 0xF, 0b0100u);  // only pattern a=0,b=1
}

TEST(FaultSim, DffCapturesFaultEffect) {
  const Netlist n =
      read_bench_string("INPUT(a)\nq = DFF(a)\nOUTPUT(q)\n");
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  PatternBatch batch(2);
  batch[0] = 0b01;  // a
  batch[1] = 0;     // q scan value (irrelevant)
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  // a sa0: detected where a == 1 via the scan capture.
  const std::uint64_t word =
      fsim.detect_word(Fault{by_name(n, "a"), false}, values);
  EXPECT_EQ(word & 0x3, 0b01u);
}

TEST(FaultSim, ObserveWordAlwaysExcited) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  PatternBatch batch(2);
  batch[0] = 0b1010;  // a
  batch[1] = 0b1100;  // b
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  // A change at a is seen at g exactly when b == 1.
  EXPECT_EQ(fsim.observe_word(by_name(n, "a"), values) & 0xF, 0b1100u);
  // A change at g is always seen.
  EXPECT_EQ(fsim.observe_word(by_name(n, "g"), values) & 0xF, 0b1111u);
}

/// Brute force: full re-simulation with the fault value forced.
std::uint64_t brute_force_detect(const LogicSimulator& sim,
                                 const PatternBatch& batch,
                                 const Fault& fault,
                                 const std::vector<std::uint64_t>& good) {
  const Netlist& n = sim.netlist();
  std::vector<std::uint64_t> faulty(n.size(), 0);
  for (std::size_t i = 0; i < sim.sources().size(); ++i) {
    faulty[sim.sources()[i]] = batch[i];
  }
  for (NodeId v : sim.order()) {
    if (!is_source(n.type(v))) faulty[v] = sim.evaluate(v, faulty);
    if (v == fault.node) faulty[v] = fault.stuck_at_one ? ~0ULL : 0ULL;
  }
  std::uint64_t detected = 0;
  for (NodeId s : sim.sinks()) {
    const NodeId driver = n.fanins(s).front();
    detected |= faulty[driver] ^ good[driver];
  }
  return detected;
}

TEST(FaultSim, MatchesBruteForceOnGeneratedCircuit) {
  GeneratorConfig config;
  config.seed = 55;
  config.target_gates = 250;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.flip_flops = 8;
  const Netlist n = generate_circuit(config);
  ASSERT_TRUE(n.validate().empty());

  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  Rng rng(99);
  const auto faults = enumerate_faults(n);

  for (int trial = 0; trial < 3; ++trial) {
    const PatternBatch batch = sim.random_batch(rng);
    std::vector<std::uint64_t> good;
    sim.simulate(batch, good);
    for (std::size_t i = 0; i < faults.size(); i += 7) {
      const std::uint64_t fast = fsim.detect_word(faults[i], good);
      const std::uint64_t brute =
          brute_force_detect(sim, batch, faults[i], good);
      EXPECT_EQ(fast, brute) << "fault node " << faults[i].node << " sa"
                             << faults[i].stuck_at_one;
    }
  }
}

TEST(FaultSim, RunBatchDropsDetectedFaults) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  const auto faults = enumerate_faults(n);
  std::vector<bool> detected(faults.size(), false);
  std::vector<std::uint64_t> words;
  PatternBatch batch(2);
  batch[0] = 0b1010;  // a
  batch[1] = 0b1100;  // b
  const std::size_t newly = fsim.run_batch(batch, faults, detected, words);
  EXPECT_EQ(newly, faults.size());  // all four patterns present: everything falls
  // Second batch: nothing new.
  EXPECT_EQ(fsim.run_batch(batch, faults, detected, words), 0u);
}

TEST(FaultSim, ParallelMatchesSerialRunBatch) {
  GeneratorConfig config;
  config.seed = 61;
  config.target_gates = 400;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.flip_flops = 10;
  const Netlist n = generate_circuit(config);
  ASSERT_TRUE(n.validate().empty());

  LogicSimulator sim(n);
  FaultSimulator serial(sim);
  ParallelFaultSimulator parallel(sim);
  const auto faults = enumerate_faults(n);
  Rng rng(5);

  std::vector<bool> det_serial(faults.size(), false);
  std::vector<bool> det_parallel(faults.size(), false);
  std::vector<std::uint64_t> words_serial, words_parallel;
  set_kernel_threads(4);
  for (int trial = 0; trial < 3; ++trial) {
    Rng rng_copy = rng;  // same patterns for both engines
    const PatternBatch batch = sim.random_batch(rng);
    const PatternBatch batch_copy = sim.random_batch(rng_copy);
    const std::size_t newly_serial =
        serial.run_batch(batch, faults, det_serial, words_serial);
    const std::size_t newly_parallel =
        parallel.run_batch(batch_copy, faults, det_parallel, words_parallel);
    EXPECT_EQ(newly_serial, newly_parallel);
    EXPECT_EQ(words_serial, words_parallel);
  }
  EXPECT_EQ(det_serial, det_parallel);
  set_kernel_threads(0);
}

TEST(LogicSim, DuplicateFaninSemantics) {
  // g = XOR(a, a) is constant 0; engines must handle repeated drivers.
  const Netlist n =
      read_bench_string("INPUT(a)\nOUTPUT(g)\ng = XOR(a, a)\n");
  LogicSimulator sim(n);
  PatternBatch batch{0b01};
  std::vector<std::uint64_t> values;
  sim.simulate(batch, values);
  NodeId g = kInvalidNode;
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == "g") g = v;
  }
  EXPECT_EQ(values[g] & 0x3, 0u);
}

TEST(FaultList, EnumerateSkipsPins) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  const auto faults = enumerate_faults(n);
  // a, b, g each get sa0+sa1; the OUTPUT pseudo-node carries none.
  EXPECT_EQ(faults.size(), 6u);
}

TEST(FaultList, SampleIsDeterministicAndBounded) {
  GeneratorConfig config;
  config.seed = 77;
  config.target_gates = 120;
  const Netlist n = generate_circuit(config);
  const auto s1 = sample_faults(n, 40, 5);
  const auto s2 = sample_faults(n, 40, 5);
  ASSERT_EQ(s1.size(), 40u);
  EXPECT_TRUE(s1 == s2);
  EXPECT_EQ(sample_faults(n, 1 << 24, 5).size(), enumerate_faults(n).size());
}

}  // namespace
}  // namespace gcnt
