// Synthetic circuit generator: determinism, structural validity, Table-1
// style statistics, and the presence of observability traps.

#include <gtest/gtest.h>

#include "cop/cop.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"

namespace gcnt {
namespace {

GeneratorConfig small_config(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  config.target_gates = 800;
  config.primary_inputs = 24;
  config.primary_outputs = 12;
  config.flip_flops = 16;
  return config;
}

TEST(Generator, DeterministicForSameSeed) {
  const Netlist a = generate_circuit(small_config(42));
  const Netlist b = generate_circuit(small_config(42));
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  const Netlist a = generate_circuit(small_config(1));
  const Netlist b = generate_circuit(small_config(2));
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

TEST(Generator, StructurallyValid) {
  const Netlist n = generate_circuit(small_config(7));
  const auto problems = n.validate();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
}

TEST(Generator, RespectsInterfaceCounts) {
  const auto config = small_config(9);
  const Netlist n = generate_circuit(config);
  EXPECT_EQ(n.primary_inputs().size(), config.primary_inputs);
  EXPECT_EQ(n.flip_flops().size(), config.flip_flops);
  EXPECT_LE(n.primary_outputs().size(), config.primary_outputs);
  EXPECT_GE(n.primary_outputs().size(), 1u);
}

TEST(Generator, GateBudgetApproximatelyMet) {
  const auto config = small_config(11);
  const Netlist n = generate_circuit(config);
  std::size_t logic = 0;
  for (NodeId v = 0; v < n.size(); ++v) {
    logic += is_logic(n.type(v)) ? 1 : 0;
  }
  EXPECT_GE(logic, config.target_gates);
  EXPECT_LE(logic, config.target_gates + config.target_gates / 2);
}

TEST(Generator, NoDanglingLogic) {
  const Netlist n = generate_circuit(small_config(13));
  for (NodeId v = 0; v < n.size(); ++v) {
    if (is_logic(n.type(v)) || n.type(v) == CellType::kInput) {
      EXPECT_FALSE(n.fanouts(v).empty()) << "dangling " << n.node_name(v);
    }
  }
}

TEST(Generator, DffsHaveDrivers) {
  const Netlist n = generate_circuit(small_config(15));
  for (NodeId ff : n.flip_flops()) {
    EXPECT_EQ(n.fanins(ff).size(), 1u);
  }
}

TEST(Generator, ProducesObservabilityTraps) {
  auto config = small_config(17);
  config.target_gates = 2000;
  config.trap_fraction = 0.05;
  const Netlist n = generate_circuit(config);
  const auto cop = compute_cop(n);
  std::size_t hard = 0;
  for (NodeId v = 0; v < n.size(); ++v) {
    if (is_sink(n.type(v)) || n.type(v) == CellType::kInput) continue;
    if (cop.observability[v] < 0.01) ++hard;
  }
  // Traps produce a meaningful difficult-to-observe population.
  EXPECT_GT(hard, 20u);
  EXPECT_LT(static_cast<double>(hard) / static_cast<double>(n.size()), 0.2);
}

TEST(Generator, TrapFreeCircuitIsMostlyObservable) {
  auto config = small_config(19);
  config.trap_fraction = 0.0;
  const Netlist n = generate_circuit(config);
  const auto cop = compute_cop(n);
  std::size_t hard = 0, total = 0;
  for (NodeId v = 0; v < n.size(); ++v) {
    if (is_sink(n.type(v)) || n.type(v) == CellType::kInput) continue;
    ++total;
    if (cop.observability[v] < 0.01) ++hard;
  }
  EXPECT_LT(static_cast<double>(hard) / static_cast<double>(total), 0.05);
}

class GeneratorSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSizes, ValidAcrossSizes) {
  GeneratorConfig config;
  config.seed = 0xABC;
  config.target_gates = GetParam();
  const Netlist n = generate_circuit(config);
  EXPECT_TRUE(n.validate().empty());
  EXPECT_GT(n.edge_count(), n.size());  // average fanin > 1
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratorSizes,
                         ::testing::Values(200, 1000, 5000, 20000));

TEST(BenchmarkDesigns, FourDistinctDesigns) {
  const Netlist b1 = generate_benchmark_design(0, 2000);
  const Netlist b2 = generate_benchmark_design(1, 2000);
  EXPECT_EQ(b1.name(), "B1");
  EXPECT_EQ(b2.name(), "B2");
  EXPECT_NE(write_bench_string(b1), write_bench_string(b2));
  EXPECT_TRUE(b1.validate().empty());
  EXPECT_TRUE(b2.validate().empty());
}

TEST(BenchmarkDesigns, EdgeToNodeRatioMatchesPaperShape) {
  // Table 1 reports roughly 1.5 edges per node.
  const Netlist b1 = generate_benchmark_design(0, 4000);
  const double ratio = static_cast<double>(b1.edge_count()) /
                       static_cast<double>(b1.size());
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.5);
}

}  // namespace
}  // namespace gcnt
