// GCN core: tensors, model numerics (finite-difference gradients), the
// sparse/recursive inference equivalence, training, and the cascade.

#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.h"
#include "common/parallel.h"
#include "data/dataset.h"
#include "gcn/model.h"
#include "gcn/multistage.h"
#include "gcn/graphsage_inference.h"
#include "gcn/recursive_inference.h"
#include "gcn/trainer.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "nn/optimizer.h"

namespace gcnt {
namespace {

/// Small reconvergent circuit used across tests.
Netlist tiny_circuit() {
  return read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = AND(a, b)
g2 = OR(b, c)
g3 = XOR(g1, g2)
y = NAND(g3, a)
)",
                           "tiny");
}

GcnConfig tiny_config(int depth = 2) {
  GcnConfig config;
  config.depth = depth;
  config.embed_dims = {8, 12, 16};
  config.fc_dims = {10, 10};
  config.seed = 99;
  return config;
}

TEST(GraphTensors, FeatureContents) {
  const Netlist n = tiny_circuit();
  const auto scoap = compute_scoap(n);
  const auto levels = n.logic_levels();
  const auto tensors = build_graph_tensors(n, scoap, levels);
  ASSERT_EQ(tensors.features.rows(), n.size());
  ASSERT_EQ(tensors.features.cols(), kNodeFeatureDim);
  for (NodeId v = 0; v < n.size(); ++v) {
    EXPECT_FLOAT_EQ(tensors.features.at(v, 0), transform_feature(levels[v]));
    EXPECT_FLOAT_EQ(tensors.features.at(v, 1), transform_feature(scoap.cc0[v]));
    EXPECT_FLOAT_EQ(tensors.features.at(v, 2), transform_feature(scoap.cc1[v]));
    EXPECT_FLOAT_EQ(tensors.features.at(v, 3), transform_feature(scoap.co[v]));
  }
}

TEST(GraphTensors, AdjacencyMirrorsNetlist) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  EXPECT_EQ(tensors.pred_coo.nnz(), n.edge_count());
  EXPECT_EQ(tensors.succ_coo.nnz(), n.edge_count());
  // (P * ones)[v] = fanin count.
  Matrix ones(n.size(), 1, 1.0f);
  Matrix fanin_counts;
  tensors.pred.spmm(ones, fanin_counts);
  for (NodeId v = 0; v < n.size(); ++v) {
    EXPECT_FLOAT_EQ(fanin_counts.at(v, 0),
                    static_cast<float>(n.fanins(v).size()));
  }
  Matrix fanout_counts;
  tensors.succ.spmm(ones, fanout_counts);
  for (NodeId v = 0; v < n.size(); ++v) {
    EXPECT_FLOAT_EQ(fanout_counts.at(v, 0),
                    static_cast<float>(n.fanouts(v).size()));
  }
}

TEST(GraphTensors, SparsityIsHigh) {
  const Netlist n = generate_benchmark_design(0, 2000);
  const auto tensors = build_graph_tensors(n);
  // The paper reports > 99.95% for its designs; ours are smaller but the
  // merged adjacency must still be extremely sparse.
  const auto merged = build_merged_adjacency(tensors, 0.5f, 0.5f);
  EXPECT_GT(merged.sparsity(), 0.995);
}

TEST(GraphTensors, MergedAdjacencyMatchesDecomposedAggregation) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  const float wp = 0.3f, ws = 0.7f;
  // Decomposed: E + wp*P*E + ws*S*E.
  Matrix want = tensors.features;
  Matrix tmp;
  tensors.pred.spmm(tensors.features, tmp);
  want.axpy(wp, tmp);
  tensors.succ.spmm(tensors.features, tmp);
  want.axpy(ws, tmp);
  // Merged (Eq. 2): A * E.
  const CsrMatrix a = CsrMatrix::from_coo(build_merged_adjacency(tensors, wp, ws));
  Matrix got;
  a.spmm(tensors.features, got);
  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4f);
  }
}

TEST(GraphTensors, IncrementalObservePointMatchesRebuild) {
  GeneratorConfig config;
  config.seed = 5;
  config.target_gates = 400;
  config.primary_inputs = 12;
  config.primary_outputs = 8;
  Netlist n = generate_circuit(config);
  auto scoap = compute_scoap(n);
  auto levels = n.logic_levels();
  auto tensors = build_graph_tensors(n, scoap, levels);

  // Insert three OPs through the incremental path.
  std::size_t inserted = 0;
  for (NodeId v = 40; v < n.size() && inserted < 3; v += 111) {
    if (!is_logic(n.type(v))) continue;
    const NodeId op = n.insert_observe_point(v);
    update_observability_after_observe(n, v, scoap);
    append_observe_point(tensors, n, v, op, scoap, n.fanin_cone(v));
    ++inserted;
  }
  ASSERT_EQ(inserted, 3u);
  tensors.rebuild_csr();

  // Rebuild everything from scratch and compare.
  const auto fresh = build_graph_tensors(n);
  ASSERT_EQ(fresh.features.rows(), tensors.features.rows());
  for (std::size_t i = 0; i < fresh.features.size(); ++i) {
    EXPECT_NEAR(fresh.features.data()[i], tensors.features.data()[i], 1e-5f)
        << "feature index " << i;
  }
  EXPECT_EQ(fresh.pred.nnz(), tensors.pred.nnz());
  EXPECT_EQ(fresh.succ.nnz(), tensors.succ.nnz());
}

TEST(GcnModel, ForwardShapeAndDeterminism) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  GcnModel model(tiny_config());
  const Matrix logits = model.infer(tensors);
  EXPECT_EQ(logits.rows(), n.size());
  EXPECT_EQ(logits.cols(), 2u);

  GcnModel model2(tiny_config());
  const Matrix logits2 = model2.infer(tensors);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_FLOAT_EQ(logits.data()[i], logits2.data()[i]);
  }
}

TEST(GcnModel, DepthOutOfRangeThrows) {
  GcnConfig config = tiny_config();
  config.depth = 5;  // only 3 embed dims configured
  EXPECT_THROW(GcnModel{config}, std::invalid_argument);
}

TEST(GcnModel, ForwardMatchesInfer) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  GcnModel model(tiny_config(3));
  const Matrix a = model.forward(tensors);
  const Matrix b = model.infer(tensors);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

/// Loss of the model on the tiny graph (for finite differences).
double model_loss(GcnModel& model, const GraphTensors& tensors,
                  const std::vector<std::int32_t>& labels) {
  const Matrix logits = model.infer(tensors);
  Matrix scratch;
  return softmax_cross_entropy(logits, labels, {1.0f, 2.0f}, nullptr,
                               scratch);
}

TEST(GcnModel, GradientsMatchFiniteDifferences) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  std::vector<std::int32_t> labels(n.size(), 0);
  labels[3] = 1;
  labels[5] = 1;

  GcnModel model(tiny_config(2));
  const Matrix logits = model.forward(tensors);
  Matrix dlogits;
  softmax_cross_entropy(logits, labels, {1.0f, 2.0f}, nullptr, dlogits);
  model.backward(tensors, dlogits);

  // Spot-check several parameters across every module type, including the
  // aggregation scalars w_pr / w_su (params 0 and 1).
  const auto params = model.params();
  const double eps = 1e-3;
  for (std::size_t p : {0u, 1u, 2u, 3u, 4u, 6u, 8u, 10u}) {
    ASSERT_LT(p, params.size());
    Param& param = *params[p];
    const std::size_t checks = std::min<std::size_t>(3, param.value.size());
    for (std::size_t k = 0; k < checks; ++k) {
      const float saved = param.value.data()[k];
      param.value.data()[k] = saved + static_cast<float>(eps);
      const double up = model_loss(model, tensors, labels);
      param.value.data()[k] = saved - static_cast<float>(eps);
      const double down = model_loss(model, tensors, labels);
      param.value.data()[k] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(param.grad.data()[k], numeric, 5e-3)
          << "param " << p << " entry " << k;
    }
  }
}

TEST(GcnModel, RecursiveInferenceMatchesSparse) {
  GeneratorConfig config;
  config.seed = 21;
  config.target_gates = 120;
  config.primary_inputs = 8;
  config.primary_outputs = 4;
  const Netlist n = generate_circuit(config);
  const auto tensors = build_graph_tensors(n);
  GcnModel model(tiny_config(3));

  const Matrix sparse_logits = model.infer(tensors);
  RecursiveInference recursive(model, n, tensors.features);
  const Matrix recursive_logits = recursive.infer_all();

  ASSERT_EQ(recursive_logits.rows(), sparse_logits.rows());
  for (std::size_t r = 0; r < sparse_logits.rows(); ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(recursive_logits.at(r, c), sparse_logits.at(r, c), 2e-2f)
          << "node " << r;
    }
  }
}

TEST(GcnModel, CopyParamsProducesIdenticalOutputs) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  GcnModel a(tiny_config());
  GcnConfig other = tiny_config();
  other.seed = 1234567;
  GcnModel b(other);
  b.copy_params_from(a);
  const Matrix la = a.infer(tensors);
  const Matrix lb = b.infer(tensors);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  }
}

/// Synthetic learnable task: label = (node observability feature is bad).
GraphTensors labeled_tensors(const Netlist& n) {
  GraphTensors tensors = build_graph_tensors(n);
  tensors.labels.assign(n.size(), 0);
  for (NodeId v = 0; v < n.size(); ++v) {
    if (tensors.features.at(v, 3) > transform_feature(60.0)) {
      tensors.labels[v] = 1;
    }
  }
  return tensors;
}

TEST(Trainer, LearnsObservabilityRule) {
  GeneratorConfig config;
  config.seed = 61;
  config.target_gates = 700;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.trap_fraction = 0.06;
  const Netlist n = generate_circuit(config);
  const GraphTensors tensors = labeled_tensors(n);

  std::size_t positives = 0;
  for (auto l : tensors.labels) positives += l;
  ASSERT_GT(positives, 10u);
  ASSERT_LT(positives, n.size() / 2);

  GcnModel model(tiny_config(2));
  TrainerOptions options;
  options.epochs = 200;
  options.learning_rate = 1e-2f;
  options.positive_class_weight = 2.0f;
  options.eval_interval = 50;
  Trainer trainer(model, options);
  const TrainGraph data{&tensors, {}};
  const auto history = trainer.train({data}, &data);

  ASSERT_EQ(history.size(), options.epochs);
  EXPECT_GT(history.back().train_accuracy, 0.93);
  EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(Trainer, SgdPathAlsoLearns) {
  GeneratorConfig config;
  config.seed = 63;
  config.target_gates = 400;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.trap_fraction = 0.06;
  const Netlist n = generate_circuit(config);
  const GraphTensors tensors = labeled_tensors(n);
  GcnModel model(tiny_config(2));
  TrainerOptions options;
  options.epochs = 150;
  options.use_adam = false;
  options.learning_rate = 5e-3f;
  options.eval_interval = 150;
  Trainer trainer(model, options);
  const TrainGraph data{&tensors, {}};
  const auto history = trainer.train({data}, &data);
  EXPECT_LT(history.back().loss, history.front().loss * 0.9);
}

TEST(Trainer, EvalIntervalCarriesLastAccuracy) {
  const Netlist n = tiny_circuit();
  GraphTensors tensors = build_graph_tensors(n);
  tensors.labels.assign(n.size(), 0);
  tensors.labels[2] = 1;
  GcnModel model(tiny_config(1));
  TrainerOptions options;
  options.epochs = 10;
  options.eval_interval = 5;
  Trainer trainer(model, options);
  const TrainGraph data{&tensors, {}};
  const auto history = trainer.train({data}, &data);
  ASSERT_EQ(history.size(), 10u);
  // Non-eval epochs carry the previous measurement forward.
  EXPECT_EQ(history[1].train_accuracy, history[0].train_accuracy);
}

TEST(Trainer, RecordsTestAccuracy) {
  const Netlist n = tiny_circuit();
  GraphTensors tensors = build_graph_tensors(n);
  tensors.labels.assign(n.size(), 0);
  tensors.labels[2] = 1;
  GcnModel model(tiny_config(1));
  TrainerOptions options;
  options.epochs = 3;
  Trainer trainer(model, options);
  const TrainGraph data{&tensors, {}};
  const auto history = trainer.train({data}, &data);
  EXPECT_GT(history.back().test_accuracy, 0.0);
}

TEST(Trainer, UnlabeledGraphThrows) {
  const Netlist n = tiny_circuit();
  const GraphTensors tensors = build_graph_tensors(n);  // no labels
  GcnModel model(tiny_config(1));
  Trainer trainer(model, TrainerOptions{});
  const TrainGraph data{&tensors, {}};
  EXPECT_THROW(trainer.train({data}, nullptr), std::invalid_argument);
}

TEST(Trainer, MultiGraphReplicasMatchSingleGraphGradients) {
  // Two identical graphs trained data-parallel must take exactly the step
  // a single graph would (averaged gradients over identical replicas).
  GeneratorConfig config;
  config.seed = 81;
  config.target_gates = 150;
  config.primary_inputs = 8;
  config.primary_outputs = 4;
  const Netlist n = generate_circuit(config);
  const GraphTensors tensors = labeled_tensors(n);

  TrainerOptions options;
  options.epochs = 2;
  options.use_adam = false;
  options.learning_rate = 1e-2f;
  options.eval_interval = 100;

  GcnModel single(tiny_config(2));
  Trainer single_trainer(single, options);
  const TrainGraph data{&tensors, {}};
  single_trainer.train({data}, nullptr);

  GcnModel dual(tiny_config(2));
  Trainer dual_trainer(dual, options);
  dual_trainer.train({data, data}, nullptr);  // one wave of two replicas

  // After averaging two identical gradients the step matches... only if the
  // single run also stepped once per epoch. It does (one wave per epoch).
  const auto ps = single.params();
  const auto pd = dual.params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t k = 0; k < ps[i]->value.size(); ++k) {
      EXPECT_NEAR(ps[i]->value.data()[k], pd[i]->value.data()[k], 1e-5f);
    }
  }
}

TEST(MultiStage, ImprovesF1OnImbalancedData) {
  GeneratorConfig config;
  config.seed = 71;
  config.target_gates = 900;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.trap_fraction = 0.05;
  const Netlist n = generate_circuit(config);
  const GraphTensors tensors = labeled_tensors(n);

  MultiStageOptions options;
  options.stages = 3;
  options.model = tiny_config(2);
  options.trainer.epochs = 40;
  options.trainer.learning_rate = 5e-3f;
  options.trainer.eval_interval = 100;

  MultiStageClassifier cascade(options);
  cascade.fit({&tensors});
  const auto multi_predictions = cascade.predict(tensors);
  const auto multi =
      evaluate_binary(multi_predictions, tensors.labels);

  // Single unweighted GCN on the same budget.
  MultiStageOptions single_options = options;
  single_options.stages = 1;
  MultiStageClassifier single(single_options);
  single.fit({&tensors});
  const auto single_predictions = single.predict(tensors);
  const auto single_cm =
      evaluate_binary(single_predictions, tensors.labels);

  EXPECT_GE(multi.f1(), single_cm.f1() - 0.02);
  EXPECT_GT(multi.f1(), 0.5);
  EXPECT_EQ(cascade.stage_models().size(), 3u);
  EXPECT_EQ(cascade.survivors_per_stage().size(), 3u);
}

TEST(GcnModel, TiedAggregationSharesWeight) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  GcnConfig config = tiny_config(2);
  config.tied_aggregation = true;
  GcnModel model(config);
  EXPECT_FLOAT_EQ(model.w_pr(), model.w_su());
  // One optimizer step keeps them equal.
  std::vector<std::int32_t> labels(n.size(), 0);
  labels[2] = 1;
  const Matrix logits = model.forward(tensors);
  Matrix dlogits;
  softmax_cross_entropy(logits, labels, {1.0f, 1.0f}, nullptr, dlogits);
  model.backward(tensors, dlogits);
  SgdOptimizer sgd(0.1f);
  sgd.step(model.params());
  EXPECT_FLOAT_EQ(model.w_pr(), model.w_su());
}

TEST(GcnModel, FrozenAggregationWeightsDoNotTrain) {
  const Netlist n = tiny_circuit();
  const auto tensors = build_graph_tensors(n);
  GcnConfig config = tiny_config(2);
  config.frozen_aggregation = true;
  config.initial_w_pr = 0.25f;
  config.initial_w_su = 0.75f;
  GcnModel model(config);
  std::vector<std::int32_t> labels(n.size(), 0);
  labels[2] = 1;
  const Matrix logits = model.forward(tensors);
  Matrix dlogits;
  softmax_cross_entropy(logits, labels, {1.0f, 1.0f}, nullptr, dlogits);
  model.backward(tensors, dlogits);
  SgdOptimizer sgd(0.5f);
  sgd.step(model.params());
  EXPECT_FLOAT_EQ(model.w_pr(), 0.25f);
  EXPECT_FLOAT_EQ(model.w_su(), 0.75f);
}

TEST(GcnModel, ZeroFrozenAggregationIgnoresNeighbors) {
  // With w_pr = w_su = 0 frozen, predictions depend only on a node's own
  // features: two nodes with identical features must get identical logits.
  const Netlist n = tiny_circuit();
  auto tensors = build_graph_tensors(n);
  // Force identical features everywhere.
  tensors.features.fill(0.3f);
  GcnConfig config = tiny_config(2);
  config.frozen_aggregation = true;
  config.initial_w_pr = 0.0f;
  config.initial_w_su = 0.0f;
  GcnModel model(config);
  const Matrix logits = model.infer(tensors);
  for (std::size_t r = 1; r < logits.rows(); ++r) {
    EXPECT_FLOAT_EQ(logits.at(r, 0), logits.at(0, 0));
    EXPECT_FLOAT_EQ(logits.at(r, 1), logits.at(0, 1));
  }
}

TEST(GraphTensors, StandardizeFeaturesZeroMeanUnitVariance) {
  const Netlist n = generate_benchmark_design(0, 800);
  GraphTensors tensors = build_graph_tensors(n);
  tensors.standardize_features();
  for (std::size_t c = 0; c < kNodeFeatureDim; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < tensors.features.rows(); ++r) {
      mean += tensors.features.at(r, c);
    }
    mean /= tensors.features.rows();
    for (std::size_t r = 0; r < tensors.features.rows(); ++r) {
      const double d = tensors.features.at(r, c) - mean;
      var += d * d;
    }
    var /= tensors.features.rows();
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(GraphTensors, EncodeConsistentAfterStandardize) {
  const Netlist n = generate_benchmark_design(1, 600);
  const auto scoap = compute_scoap(n);
  const auto levels = n.logic_levels();
  GraphTensors tensors = build_graph_tensors(n, scoap, levels);
  tensors.standardize_features();
  // encode(raw) must match the standardized stored rows.
  for (NodeId v = 0; v < n.size(); v += 37) {
    if (n.type(v) == CellType::kObserve) continue;
    EXPECT_NEAR(tensors.encode(0, levels[v]), tensors.features.at(v, 0), 1e-4f);
    EXPECT_NEAR(tensors.encode(3, scoap.co[v]), tensors.features.at(v, 3), 1e-4f);
  }
}

TEST(GraphTensors, IncrementalUpdateConsistentUnderStandardization) {
  GeneratorConfig config;
  config.seed = 15;
  config.target_gates = 300;
  Netlist n = generate_circuit(config);
  auto scoap = compute_scoap(n);
  auto levels = n.logic_levels();
  GraphTensors tensors = build_graph_tensors(n, scoap, levels);
  tensors.standardize_features();
  const auto mean = tensors.feature_mean;
  const auto scale = tensors.feature_scale;

  NodeId target = kInvalidNode;
  for (NodeId v = 50; v < n.size(); ++v) {
    if (is_logic(n.type(v))) {
      target = v;
      break;
    }
  }
  const NodeId op = n.insert_observe_point(target);
  update_observability_after_observe(n, target, scoap);
  append_observe_point(tensors, n, target, op, scoap, n.fanin_cone(target));
  // The affine must be unchanged, and the new rows must be expressed in it.
  EXPECT_EQ(tensors.feature_mean, mean);
  EXPECT_EQ(tensors.feature_scale, scale);
  EXPECT_FLOAT_EQ(tensors.features.at(op, 3), tensors.encode(3, 0.0));
  EXPECT_FLOAT_EQ(tensors.features.at(target, 3),
                  tensors.encode(3, scoap.co[target]));
}

TEST(GraphSage, ExactOnChainGraphs) {
  // On a pure chain every node has at most one predecessor/successor, so
  // fixed-fanout sampling with replacement always picks that neighbor and
  // the importance scale collapses to w — the sampled estimate must equal
  // the exact sparse inference.
  Netlist n("chain");
  NodeId prev = n.add_node(CellType::kInput, "a");
  for (int i = 0; i < 6; ++i) {
    const NodeId g = n.add_node(i % 2 ? CellType::kNot : CellType::kBuf);
    n.connect(prev, g);
    prev = g;
  }
  const NodeId po = n.add_node(CellType::kOutput, "po");
  n.connect(prev, po);

  const auto tensors = build_graph_tensors(n);
  GcnModel model(tiny_config(3));
  const Matrix exact = model.infer(tensors);
  GraphSageInference sage(model, n, tensors.features);
  const Matrix sampled = sage.infer_all();
  ASSERT_EQ(sampled.rows(), exact.rows());
  for (std::size_t r = 0; r < exact.rows(); ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(sampled.at(r, c), exact.at(r, c), 2e-2f) << "node " << r;
    }
  }
}

TEST(GraphSage, DeterministicForSeed) {
  GeneratorConfig config;
  config.seed = 23;
  config.target_gates = 60;
  config.primary_inputs = 6;
  config.primary_outputs = 3;
  const Netlist n = generate_circuit(config);
  const auto tensors = build_graph_tensors(n);
  GcnModel model(tiny_config(2));
  SampleFanouts fanouts;
  fanouts.per_hop = {6, 4};
  GraphSageInference a(model, n, tensors.features, fanouts, 5);
  GraphSageInference b(model, n, tensors.features, fanouts, 5);
  const Matrix la = a.infer_all();
  const Matrix lb = b.infer_all();
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  }
}

TEST(GraphSage, SampledEstimateIsUnbiasedPreNonlinearity) {
  // A depth-1 model on a star graph: average many sampled runs and the
  // mean aggregation must approach the exact weighted sum.
  Netlist n("star");
  std::vector<NodeId> leaves;
  for (int i = 0; i < 5; ++i) {
    leaves.push_back(n.add_node(CellType::kInput));
  }
  const NodeId hub = n.add_node(CellType::kOr);
  for (NodeId leaf : leaves) n.connect(leaf, hub);
  const NodeId po = n.add_node(CellType::kOutput);
  n.connect(hub, po);

  auto tensors = build_graph_tensors(n);
  GcnConfig config = tiny_config(1);
  GcnModel model(config);
  const Matrix exact = model.infer(tensors);

  double mean0 = 0.0;
  const int runs = 400;
  for (int run = 0; run < runs; ++run) {
    SampleFanouts fanouts;
    fanouts.per_hop = {4};
    GraphSageInference sage(model, n, tensors.features, fanouts,
                            static_cast<std::uint64_t>(run + 1));
    mean0 += sage.infer_node(hub)[0];
  }
  mean0 /= runs;
  // ReLU introduces some bias; the estimate must still be close.
  EXPECT_NEAR(mean0, exact.at(hub, 0), 0.25);
}

TEST(MultiStage, ZeroStagesThrows) {
  MultiStageOptions options;
  options.stages = 0;
  EXPECT_THROW(MultiStageClassifier{options}, std::invalid_argument);
}

TEST(MultiStage, AllNegativeGraphDoesNotCrash) {
  // A graph with no positive labels: stages must still train and predict
  // (everything filtered out early).
  const Netlist n = tiny_circuit();
  GraphTensors tensors = build_graph_tensors(n);
  tensors.labels.assign(n.size(), 0);
  MultiStageOptions options;
  options.stages = 2;
  options.model = tiny_config(1);
  options.trainer.epochs = 5;
  options.trainer.eval_interval = 5;
  MultiStageClassifier cascade(options);
  cascade.fit({&tensors});
  const auto predictions = cascade.predict(tensors);
  std::size_t positives = 0;
  for (auto p : predictions) positives += p;
  EXPECT_LE(positives, n.size());  // well-defined output
}

TEST(MultiStage, SurvivorsShrinkAcrossStages) {
  GeneratorConfig config;
  config.seed = 73;
  config.target_gates = 500;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.trap_fraction = 0.05;
  const Netlist n = generate_circuit(config);
  const GraphTensors tensors = labeled_tensors(n);

  MultiStageOptions options;
  options.stages = 2;
  options.model = tiny_config(2);
  options.trainer.epochs = 30;
  options.trainer.eval_interval = 100;
  MultiStageClassifier cascade(options);
  cascade.fit({&tensors});
  const auto& survivors = cascade.survivors_per_stage();
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_LT(survivors[0], n.size());  // stage 1 filtered something
  EXPECT_LE(survivors[1], survivors[0]);
}

TEST(ForwardWorkspace, SteadyStateInferAllocatesNothing) {
  GeneratorConfig config;
  config.seed = 19;
  config.target_gates = 800;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  const Netlist n = generate_circuit(config);
  const auto tensors = build_graph_tensors(n);
  const GcnModel model(tiny_config(2));

  // First pass per graph grows the workspace buffers; every pass after
  // that must reuse their capacity — zero heap allocations.
  ForwardWorkspace ws;
  Matrix out;
  model.infer(tensors, ws, out);
  const Matrix reference = out;
  EXPECT_EQ(reference, model.infer(tensors)) << "overloads must agree";
  (void)ws.poll_allocations();  // drain the warm-up growth events
  const std::size_t logits_capacity = out.capacity();
  for (int pass = 0; pass < 3; ++pass) {
    model.infer(tensors, ws, out);
    EXPECT_EQ(ws.poll_allocations(), 0u) << "pass " << pass;
    EXPECT_EQ(out.capacity(), logits_capacity) << "pass " << pass;
    EXPECT_EQ(out, reference) << "pass " << pass;
  }
}

TEST(GraphReorder, RcmInferenceBitwiseMatchesUnordered) {
  GeneratorConfig config;
  config.seed = 57;
  config.target_gates = 1500;
  config.primary_inputs = 24;
  config.primary_outputs = 10;
  config.flip_flops = 16;
  const Netlist n = generate_circuit(config);

  set_graph_reorder(GraphReorder::kOff);
  const auto plain = build_graph_tensors(n);
  set_graph_reorder(GraphReorder::kRcm);
  const auto reordered = build_graph_tensors(n);
  reset_graph_reorder();

  ASSERT_FALSE(plain.reordered());
  ASSERT_TRUE(reordered.reordered());
  // The RCM permutation is a genuine (non-identity) bijection.
  const std::size_t nodes = reordered.node_count();
  ASSERT_EQ(reordered.compute_row.size(), nodes);
  ASSERT_EQ(reordered.compute_node.size(), nodes);
  bool nontrivial = false;
  for (std::uint32_t p = 0; p < nodes; ++p) {
    ASSERT_EQ(reordered.compute_row[reordered.compute_node[p]], p);
    nontrivial |= reordered.compute_node[p] != p;
  }
  EXPECT_TRUE(nontrivial);
  // Every API boundary stays node-ordered — only the CSR forms permute.
  EXPECT_EQ(plain.features, reordered.features);
  EXPECT_EQ(plain.labels, reordered.labels);

  // Reordering is invisible bit-for-bit: the permuted CSR preserves each
  // row's accumulation order, and the logits scatter back to node order.
  const GcnModel model(tiny_config(2));
  const Matrix baseline = model.infer(plain);
  EXPECT_EQ(baseline, model.infer(reordered));

  set_kernel_threads(8);
  EXPECT_EQ(baseline, model.infer(reordered)) << "thread invariance";
  set_kernel_threads(0);
}

TEST(GraphReorder, GatherScatterRoundTrip) {
  set_graph_reorder(GraphReorder::kRcm);
  const auto tensors = build_graph_tensors(tiny_circuit());
  reset_graph_reorder();
  ASSERT_TRUE(tensors.reordered());

  Matrix compute_major, node_major;
  gather_compute_rows(tensors, tensors.features, compute_major);
  scatter_compute_rows(tensors, compute_major, node_major);
  EXPECT_EQ(tensors.features, node_major);
}

}  // namespace
}  // namespace gcnt
