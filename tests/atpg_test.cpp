// PODEM and the full ATPG flow: generated tests must really detect their
// faults, redundancy must be proven, coverage must be high.

#include <gtest/gtest.h>

#include <algorithm>

#include "atpg/atpg.h"
#include "cop/cop.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "sim/fault_sim.h"

namespace gcnt {
namespace {

NodeId by_name(const Netlist& n, const std::string& name) {
  for (NodeId v = 0; v < n.size(); ++v) {
    if (n.node_name(v) == name) return v;
  }
  ADD_FAILURE() << "node not found: " << name;
  return kInvalidNode;
}

constexpr const char* kC17 = R"(
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

/// Confirms `assignment` really detects `fault` by bit-parallel fault
/// simulation (don't-cares filled with zeros).
bool pattern_detects(const Netlist& n, const std::vector<Ternary>& assignment,
                     const Fault& fault) {
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  PatternBatch batch(sim.sources().size(), 0);
  for (std::size_t s = 0; s < batch.size(); ++s) {
    if (assignment[s] == Ternary::kOne) batch[s] = ~0ULL;
  }
  std::vector<std::uint64_t> good;
  sim.simulate(batch, good);
  return fsim.detect_word(fault, good) != 0;
}

TEST(Podem, FindsTestForSimpleFault) {
  const Netlist n =
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\n");
  LogicSimulator sim(n);
  Podem podem(sim, compute_scoap(n));
  const Fault fault{by_name(n, "g"), false};  // g sa0 needs a=b=1
  const auto result = podem.generate(fault);
  ASSERT_EQ(result.status, PodemResult::Status::kTest);
  EXPECT_TRUE(pattern_detects(n, result.assignment, fault));
}

TEST(Podem, AllC17FaultsTestable) {
  const Netlist n = read_bench_string(kC17, "c17");
  LogicSimulator sim(n);
  Podem podem(sim, compute_scoap(n));
  for (const Fault& fault : enumerate_faults(n)) {
    const auto result = podem.generate(fault);
    ASSERT_EQ(result.status, PodemResult::Status::kTest)
        << "fault on " << n.node_name(fault.node) << " sa"
        << fault.stuck_at_one;
    EXPECT_TRUE(pattern_detects(n, result.assignment, fault));
  }
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // y = OR(a, NOT(a)) is constant 1: y sa1 is undetectable.
  const Netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n");
  LogicSimulator sim(n);
  Podem podem(sim, compute_scoap(n));
  const auto result = podem.generate(Fault{by_name(n, "y"), true});
  EXPECT_EQ(result.status, PodemResult::Status::kUntestable);
}

TEST(Podem, DetectsThroughReconvergence) {
  // Reconvergent fanout with opposite parities: needs a real search.
  const Netlist n = read_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
p = AND(a, b)
q = OR(a, c)
y = AND(p, q)
)");
  LogicSimulator sim(n);
  Podem podem(sim, compute_scoap(n));
  for (const Fault& fault : enumerate_faults(n)) {
    const auto result = podem.generate(fault);
    if (result.status == PodemResult::Status::kTest) {
      EXPECT_TRUE(pattern_detects(n, result.assignment, fault))
          << "fault on " << n.node_name(fault.node);
    } else {
      // Anything not testable here must be proven, not aborted.
      EXPECT_EQ(result.status, PodemResult::Status::kUntestable);
    }
  }
}

TEST(Podem, GeneratedPatternsDetectOnSynthetic) {
  GeneratorConfig config;
  config.seed = 33;
  config.target_gates = 300;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.flip_flops = 6;
  const Netlist n = generate_circuit(config);
  LogicSimulator sim(n);
  Podem podem(sim, compute_scoap(n));
  const auto faults = sample_faults(n, 40, 3);
  std::size_t tested = 0;
  for (const Fault& fault : faults) {
    const auto result = podem.generate(fault);
    if (result.status == PodemResult::Status::kTest) {
      EXPECT_TRUE(pattern_detects(n, result.assignment, fault))
          << "fault on node " << fault.node;
      ++tested;
    }
  }
  EXPECT_GT(tested, faults.size() / 2);
}

TEST(Atpg, FullCoverageOnC17) {
  const Netlist n = read_bench_string(kC17, "c17");
  AtpgOptions options;
  options.seed = 5;
  const AtpgResult result = run_atpg(n, options);
  EXPECT_EQ(result.detected_faults, result.total_faults);
  EXPECT_DOUBLE_EQ(result.fault_coverage(), 1.0);
  EXPECT_GT(result.pattern_count, 0u);
  EXPECT_LE(result.pattern_count, result.total_faults);
}

TEST(Atpg, RedundantFaultCountedUntestable) {
  const Netlist n = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nc = OR(a, na)\ny = AND(b, "
      "c)\n");
  AtpgOptions options;
  options.max_random_batches = 2;
  const AtpgResult result = run_atpg(n, options);
  EXPECT_GE(result.untestable_faults, 1u);
  EXPECT_LT(result.fault_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(result.test_coverage(),
                   static_cast<double>(result.detected_faults) /
                       static_cast<double>(result.total_faults -
                                           result.untestable_faults));
}

TEST(Atpg, HighCoverageOnSyntheticDesign) {
  GeneratorConfig config;
  config.seed = 37;
  config.target_gates = 500;
  config.primary_inputs = 16;
  config.primary_outputs = 8;
  config.flip_flops = 10;
  config.trap_fraction = 0.0;  // no deliberately hard logic
  const Netlist n = generate_circuit(config);
  const AtpgResult result = run_atpg(n);
  EXPECT_GT(result.test_coverage(), 0.95);
}

TEST(Atpg, ObservePointsImproveCoverage) {
  GeneratorConfig config;
  config.seed = 41;
  config.target_gates = 400;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.trap_fraction = 0.08;  // hard-to-observe regions
  config.trap_enable_width = 10;
  Netlist n = generate_circuit(config);

  AtpgOptions options;
  // Random stage only: with identical patterns, added observation points
  // can only grow the detected set (sinks are a superset), so the
  // comparison is exact rather than subject to PODEM search noise.
  options.deterministic_topoff = false;
  options.max_random_batches = 8;
  const AtpgResult before = run_atpg(n, options);

  // Observe every trap exit's input side: approximate by observing all
  // nodes with terrible COP observability.
  const auto cop = compute_cop(n);
  std::size_t ops = 0;
  const std::size_t original = n.size();
  for (NodeId v = 0; v < original; ++v) {
    if (is_sink(n.type(v)) || n.type(v) == CellType::kInput) continue;
    if (cop.observability[v] < 0.01) {
      n.insert_observe_point(v);
      ++ops;
    }
  }
  ASSERT_GT(ops, 0u);
  const AtpgResult after = run_atpg(n, options);
  EXPECT_GT(after.fault_coverage(), before.fault_coverage());
}

TEST(Atpg, CollectedPatternsReplayToSameCoverage) {
  GeneratorConfig config;
  config.seed = 39;
  config.target_gates = 350;
  config.primary_inputs = 12;
  config.primary_outputs = 6;
  config.flip_flops = 8;
  const Netlist n = generate_circuit(config);

  AtpgOptions options;
  options.collect_patterns = true;
  const AtpgResult result = run_atpg(n, options);
  ASSERT_EQ(result.patterns.size(), result.pattern_count);

  // Replay exactly the collected set against the full fault list.
  LogicSimulator sim(n);
  FaultSimulator fsim(sim);
  const auto faults = enumerate_faults(n);
  std::vector<bool> detected(faults.size(), false);
  std::vector<std::uint64_t> words;
  for (std::size_t start = 0; start < result.patterns.size(); start += 64) {
    PatternBatch batch(sim.sources().size(), 0);
    const std::size_t count =
        std::min<std::size_t>(64, result.patterns.size() - start);
    for (std::size_t k = 0; k < count; ++k) {
      const auto& pattern = result.patterns[start + k];
      for (std::size_t s = 0; s < batch.size(); ++s) {
        if (pattern[s]) batch[s] |= 1ULL << k;
      }
    }
    fsim.run_batch(batch, faults, detected, words);
  }
  std::size_t replay_detected = 0;
  for (bool d : detected) replay_detected += d ? 1 : 0;
  EXPECT_GE(replay_detected, result.detected_faults);
}

TEST(Atpg, DeterministicAcrossRuns) {
  const Netlist n = read_bench_string(kC17, "c17");
  const AtpgResult a = run_atpg(n);
  const AtpgResult b = run_atpg(n);
  EXPECT_EQ(a.pattern_count, b.pattern_count);
  EXPECT_EQ(a.detected_faults, b.detected_faults);
}

}  // namespace
}  // namespace gcnt
