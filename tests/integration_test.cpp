// End-to-end pipeline at miniature scale: generate -> label -> train
// (leave-one-design-out) -> classify -> insert observation points -> ATPG.
// This mirrors the paper's full experimental flow in one run.

#include <gtest/gtest.h>

#include "atpg/atpg.h"
#include "data/dataset.h"
#include "dft/baseline_opi.h"
#include "dft/gcn_opi.h"
#include "gcn/trainer.h"
#include "ml/features.h"
#include "ml/linear_models.h"

namespace gcnt {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LabelerOptions labeler;
    labeler.batches = 6;
    suite_ = new std::vector<Dataset>(make_benchmark_suite(900, labeler));
  }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static std::vector<Dataset>* suite_;
};

std::vector<Dataset>* PipelineTest::suite_ = nullptr;

GcnConfig mini_config() {
  GcnConfig config;
  config.depth = 3;
  config.embed_dims = {8, 16, 32};
  config.fc_dims = {16, 16};
  config.seed = 777;
  return config;
}

TEST_F(PipelineTest, SuiteHasImbalancedLabels) {
  for (const Dataset& d : *suite_) {
    EXPECT_GT(d.positives(), 5u) << d.name();
    EXPECT_GT(d.negatives(), d.positives() * 5) << d.name();
  }
}

TEST_F(PipelineTest, LeaveOneOutGcnBeatsChanceOnUnseenDesign) {
  // Train on B2..B4 balanced, test on B1 balanced — the inductive claim.
  GcnModel model(mini_config());
  TrainerOptions options;
  options.epochs = 300;
  options.learning_rate = 1e-2f;
  options.eval_interval = 50;
  Trainer trainer(model, options);

  std::vector<TrainGraph> train_set;
  for (std::size_t i = 1; i < suite_->size(); ++i) {
    train_set.push_back(TrainGraph{&(*suite_)[i].tensors,
                                   balanced_rows((*suite_)[i], 1000 + i)});
  }
  const TrainGraph test{&(*suite_)[0].tensors,
                        balanced_rows((*suite_)[0], 999)};
  const auto history = trainer.train(train_set, &test);
  // Well above the 0.5 chance level, with headroom for the documented
  // cross-target numeric tolerance (scalar vs AVX2 FMA contraction
  // perturbs trained weights slightly on this miniature split).
  EXPECT_GT(history.back().test_accuracy, 0.75);
  EXPECT_GT(history.back().train_accuracy, 0.75);
}

TEST_F(PipelineTest, GcnGeneralizesBetterThanLinearBaseline) {
  // A quick Table-2-shaped check: leave-one-out accuracy of LR vs GCN.
  const Dataset& test_design = (*suite_)[0];
  const auto test_rows = balanced_rows(test_design, 5);

  // Logistic regression on cone features.
  ConeFeatureOptions cone;
  cone.fanin_nodes = 20;
  cone.fanout_nodes = 20;
  Matrix train_x;
  std::vector<std::int32_t> train_y;
  {
    std::vector<Matrix> blocks;
    for (std::size_t i = 1; i < suite_->size(); ++i) {
      const Dataset& d = (*suite_)[i];
      const auto rows = balanced_rows(d, 100 + i);
      blocks.push_back(
          extract_cone_features(d.netlist, d.tensors.features, rows, cone));
      for (std::uint32_t r : rows) train_y.push_back(d.tensors.labels[r]);
    }
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.rows();
    train_x.resize(total, cone_feature_dim(cone));
    std::size_t at = 0;
    for (const auto& b : blocks) {
      for (std::size_t r = 0; r < b.rows(); ++r, ++at) {
        for (std::size_t c = 0; c < b.cols(); ++c) {
          train_x.at(at, c) = b.at(r, c);
        }
      }
    }
  }
  LogisticRegression lr;
  lr.fit(train_x, train_y);
  const Matrix test_x = extract_cone_features(
      test_design.netlist, test_design.tensors.features, test_rows, cone);
  const auto lr_pred_rows = lr.predict(test_x);
  std::size_t lr_correct = 0;
  for (std::size_t k = 0; k < test_rows.size(); ++k) {
    lr_correct += lr_pred_rows[k] == test_design.tensors.labels[test_rows[k]];
  }
  const double lr_accuracy =
      static_cast<double>(lr_correct) / static_cast<double>(test_rows.size());

  // GCN, same split.
  GcnModel model(mini_config());
  TrainerOptions options;
  options.epochs = 200;
  options.learning_rate = 1e-2f;
  options.eval_interval = 50;
  Trainer trainer(model, options);
  std::vector<TrainGraph> train_set;
  for (std::size_t i = 1; i < suite_->size(); ++i) {
    train_set.push_back(TrainGraph{&(*suite_)[i].tensors,
                                   balanced_rows((*suite_)[i], 100 + i)});
  }
  const TrainGraph test{&test_design.tensors, test_rows};
  const auto history = trainer.train(train_set, &test);

  EXPECT_GT(history.back().test_accuracy, lr_accuracy - 0.05)
      << "GCN should not trail the linear baseline";
}

TEST_F(PipelineTest, OpiFlowsReachComparableCoverageShape) {
  // Miniature Table 3: both flows evaluated by the same ATPG engine.
  const Dataset& design = (*suite_)[1];

  // Train the classifier on the other designs (inductive use).
  GcnModel model(mini_config());
  TrainerOptions options;
  options.epochs = 200;
  options.learning_rate = 1e-2f;
  options.positive_class_weight = 6.0f;
  options.eval_interval = 100;
  Trainer trainer(model, options);
  std::vector<TrainGraph> train_set;
  for (std::size_t i = 0; i < suite_->size(); ++i) {
    if (i == 1) continue;
    train_set.push_back(TrainGraph{&(*suite_)[i].tensors, {}});
  }
  trainer.train(train_set, nullptr);

  AtpgOptions atpg;
  atpg.max_random_batches = 10;
  atpg.podem.backtrack_limit = 32;

  Netlist baseline_netlist = design.netlist;
  const auto baseline = run_baseline_opi(baseline_netlist, BaselineOpiOptions{});
  const auto baseline_atpg = run_atpg(baseline_netlist, atpg);

  Netlist gcn_netlist = design.netlist;
  GcnOpiOptions gcn_options;
  gcn_options.max_iterations = 8;
  const auto gcn = run_gcn_opi(gcn_netlist, {&model}, gcn_options);
  const auto gcn_atpg = run_atpg(gcn_netlist, atpg);

  EXPECT_GT(baseline.inserted.size(), 0u);
  EXPECT_GT(gcn.inserted.size(), 0u);
  // Shape of Table 3: comparable coverage (within 2%), and the GCN flow
  // must not need wildly more OPs than the baseline.
  EXPECT_NEAR(gcn_atpg.fault_coverage(), baseline_atpg.fault_coverage(),
              0.03);
  EXPECT_LT(static_cast<double>(gcn.inserted.size()),
            1.5 * static_cast<double>(baseline.inserted.size()));
}

}  // namespace
}  // namespace gcnt
