// End-to-end tests of the `gcnt serve` daemon over a real Unix socket:
// bit-identity of served logits against direct GcnModel::infer, the
// incremental append-observe / append-control paths, hot reload,
// admission control, malformed-frame handling, and clean shutdown.
//
// The serving contract these tests pin: serving changes where the bits
// are computed — across connections, worker threads, and batches —
// never which bits.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/stats.h"
#include "gcn/graph_tensors.h"
#include "gcn/model.h"
#include "gcn/serialize.h"
#include "gen/generator.h"
#include "netlist/bench_io.h"
#include "scoap/scoap.h"
#include "serve/client.h"
#include "serve/server.h"

namespace gcnt::serve {
namespace {

GcnConfig small_config(std::uint64_t seed = 31) {
  GcnConfig config;
  config.depth = 2;
  config.embed_dims = {8, 12};
  config.fc_dims = {10};
  config.seed = seed;
  return config;
}

Netlist small_circuit(std::uint64_t seed = 3, std::size_t gates = 260) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.target_gates = gates;
  return generate_circuit(gen);
}

/// A circuit as both .bench text and the netlist the server will parse
/// from it. The .bench round trip renumbers nodes, so bit-identity
/// references must come from the re-parsed netlist, not the generated
/// one — the server and the test must agree on node ids and summation
/// order exactly.
struct Circuit {
  std::string text;
  Netlist netlist;
};

Circuit canonical_circuit(std::uint64_t seed = 3, std::size_t gates = 260) {
  std::string text = write_bench_string(small_circuit(seed, gates));
  Netlist netlist = read_bench_string(text);
  return Circuit{std::move(text), std::move(netlist)};
}

/// What the single-shot pipeline computes for this netlist.
Matrix reference_logits(const Netlist& netlist, const GcnModel& model) {
  const ScoapMeasures scoap = compute_scoap(netlist);
  const std::vector<std::uint32_t> levels = netlist.logic_levels();
  const GraphTensors tensors = build_graph_tensors(netlist, scoap, levels);
  return model.infer(tensors);
}

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

NodeId first_observe_target(const Netlist& netlist) {
  for (NodeId v = 0; v < netlist.size(); ++v) {
    const CellType t = netlist.type(v);
    if (is_sink(t) || t == CellType::kInput) continue;
    bool has_op = false;
    for (NodeId g : netlist.fanouts(v)) {
      if (netlist.type(g) == CellType::kObserve) has_op = true;
    }
    if (!has_op) return v;
  }
  return kInvalidNode;
}

/// Owns the on-disk fixtures (model artifact, socket path) and the
/// in-process daemon for one test.
class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid keeps the threads1/threads8 ctest registrations of this
    // binary — which run concurrently under `ctest -j` in one working
    // directory — from colliding on sockets and artifacts.
    const std::string tag =
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "_" + std::to_string(::getpid());
    model_path_ = "serve_model_" + tag + ".bin";
    socket_path_ = "serve_" + tag + ".sock";
    model_ = std::make_unique<GcnModel>(small_config());
    save_model_file(*model_, model_path_);
  }

  void TearDown() override {
    if (server_) {
      server_->request_stop();
      server_->wait();
      server_.reset();
    }
    ::unlink(model_path_.c_str());
    ::unlink(socket_path_.c_str());
  }

  ServeOptions options() const {
    ServeOptions options;
    options.model_path = model_path_;
    options.unix_socket = socket_path_;
    return options;
  }

  void start(ServeOptions options) {
    server_ = std::make_unique<ServeServer>(std::move(options));
    server_->start();
  }

  ServeClient connect() { return ServeClient::connect_unix(socket_path_); }

  std::string model_path_;
  std::string socket_path_;
  std::unique_ptr<GcnModel> model_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeServerTest, PingAndSessionLifecycle) {
  start(options());
  ServeClient client = connect();
  client.ping();

  const Circuit circuit = canonical_circuit();
  const auto info =
      client.load_session_inline("s1", circuit.text, /*standardize=*/false);
  EXPECT_EQ(info.nodes, circuit.netlist.size());
  EXPECT_EQ(info.edges, circuit.netlist.edge_count());
  EXPECT_EQ(server_->session_count(), 1u);

  client.close_session("s1");
  EXPECT_EQ(server_->session_count(), 0u);
  try {
    client.infer("s1");
    FAIL() << "expected Error{kUsage}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
  }
}

TEST_F(ServeServerTest, InferIsBitIdenticalToSingleShot) {
  start(options());
  ServeClient client = connect();
  const Circuit circuit = canonical_circuit();
  client.load_session_inline("s1", circuit.text, false);

  const Matrix expected = reference_logits(circuit.netlist, *model_);
  // Twice: the second request is a warm-cache hit and must not drift.
  expect_bit_identical(client.infer("s1"), expected);
  expect_bit_identical(client.infer("s1"), expected);
}

TEST_F(ServeServerTest, ConcurrentClientsStayBitIdentical) {
  ServeOptions opts = options();
  opts.workers = 4;
  start(opts);

  const Circuit a = canonical_circuit(3);
  const Circuit b = canonical_circuit(11, 180);
  {
    ServeClient setup = connect();
    setup.load_session_inline("a", a.text, false);
    setup.load_session_inline("b", b.text, false);
  }
  const Matrix expected_a = reference_logits(a.netlist, *model_);
  const Matrix expected_b = reference_logits(b.netlist, *model_);

  constexpr int kClients = 6;
  constexpr int kRounds = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ServeClient client = ServeClient::connect_unix(socket_path_);
      const Matrix& expected = (i % 2 == 0) ? expected_a : expected_b;
      const std::string session = (i % 2 == 0) ? "a" : "b";
      for (int round = 0; round < kRounds; ++round) {
        const Matrix got = client.infer(session);
        if (got.rows() != expected.rows() ||
            got.cols() != expected.cols()) {
          failures.fetch_add(1);
          return;
        }
        for (std::size_t k = 0; k < got.size(); ++k) {
          if (got.data()[k] != expected.data()[k]) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServeServerTest, AppendObserveMatchesFullRebuild) {
  start(options());
  ServeClient client = connect();
  Circuit circuit = canonical_circuit();
  Netlist& netlist = circuit.netlist;
  client.load_session_inline("s1", circuit.text, false);
  // Warm the caches first so the append exercises the dirty-cone path.
  client.infer("s1");

  const NodeId target = first_observe_target(netlist);
  ASSERT_NE(target, kInvalidNode);
  const auto result = client.append_observe("s1", target);
  EXPECT_EQ(result.node_count, netlist.size() + 1);

  const NodeId local_op = netlist.insert_observe_point(target);
  EXPECT_EQ(result.op, local_op);
  expect_bit_identical(client.infer("s1"),
                       reference_logits(netlist, *model_));
}

TEST_F(ServeServerTest, AppendControlMatchesFullRebuild) {
  start(options());
  ServeClient client = connect();
  Circuit circuit = canonical_circuit();
  Netlist& netlist = circuit.netlist;
  client.load_session_inline("s1", circuit.text, false);
  client.infer("s1");

  const NodeId target = first_observe_target(netlist);
  ASSERT_NE(target, kInvalidNode);
  const auto result = client.append_control("s1", target, true);

  const Netlist::ControlPoint local =
      netlist.insert_control_point(target, true);
  EXPECT_EQ(result.control, local.control);
  EXPECT_EQ(result.gate, local.gate);
  EXPECT_EQ(result.inverter, local.inverter);
  expect_bit_identical(client.infer("s1"),
                       reference_logits(netlist, *model_));
}

TEST_F(ServeServerTest, InvalidTargetsGetTypedUsageErrors) {
  start(options());
  ServeClient client = connect();
  const Circuit circuit = canonical_circuit();
  const Netlist& netlist = circuit.netlist;
  client.load_session_inline("s1", circuit.text, false);
  try {
    client.append_observe("s1", static_cast<NodeId>(netlist.size() + 7));
    FAIL() << "expected Error{kUsage}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
  }
  // The session survives a rejected edit.
  expect_bit_identical(client.infer("s1"),
                       reference_logits(netlist, *model_));
}

TEST_F(ServeServerTest, HotReloadSwapsModelsAtomically) {
  start(options());
  ServeClient client = connect();
  const Circuit circuit = canonical_circuit();
  const Netlist& netlist = circuit.netlist;
  client.load_session_inline("s1", circuit.text, false);
  expect_bit_identical(client.infer("s1"),
                       reference_logits(netlist, *model_));

  // Swap in a differently-seeded model; served logits must follow.
  const GcnModel other(small_config(/*seed=*/77));
  const std::string other_path = model_path_ + ".other";
  save_model_file(other, other_path);
  EXPECT_EQ(client.reload(other_path), 2u);
  expect_bit_identical(client.infer("s1"), reference_logits(netlist, other));

  // And back: generation advances, logits return exactly.
  EXPECT_EQ(client.reload(model_path_), 3u);
  expect_bit_identical(client.infer("s1"),
                       reference_logits(netlist, *model_));
  ::unlink(other_path.c_str());
}

TEST_F(ServeServerTest, ReloadFailureLeavesServedModelUntouched) {
  start(options());
  ServeClient client = connect();
  const Circuit circuit = canonical_circuit();
  const Netlist& netlist = circuit.netlist;
  client.load_session_inline("s1", circuit.text, false);
  try {
    client.reload("no_such_model_artifact.bin");
    FAIL() << "expected Error{kIo}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  expect_bit_identical(client.infer("s1"),
                       reference_logits(netlist, *model_));
}

TEST_F(ServeServerTest, BadProtocolVersionGetsTypedError) {
  start(options());
  ServeClient client = connect();
  Frame frame;
  frame.version = 9;
  frame.opcode = static_cast<std::uint8_t>(Op::kPing);
  frame.request_id = 5;
  write_frame(client.write_fd(), frame);

  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  ASSERT_EQ(read_frame(client.write_fd(), response, kind, message),
            ReadStatus::kFrame);
  WireReader reader(response.body);
  EXPECT_EQ(error_kind_for_status(reader.u8()), ErrorKind::kVersion);
  // The connection survives a version mismatch: same client, good frame.
  client.ping();
}

TEST_F(ServeServerTest, UnknownOpcodeGetsTypedError) {
  start(options());
  ServeClient client = connect();
  Frame frame;
  frame.opcode = 0x42;
  frame.request_id = 6;
  write_frame(client.write_fd(), frame);

  Frame response;
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  ASSERT_EQ(read_frame(client.write_fd(), response, kind, message),
            ReadStatus::kFrame);
  EXPECT_EQ(response.request_id, 6u);
  WireReader reader(response.body);
  EXPECT_EQ(error_kind_for_status(reader.u8()), ErrorKind::kUsage);
  client.ping();
}

TEST_F(ServeServerTest, MalformedFrameClosesConnectionWithoutLeakingState) {
  start(options());
  ServeClient good = connect();
  const Circuit circuit = canonical_circuit();
  const Netlist& netlist = circuit.netlist;
  good.load_session_inline("s1", circuit.text, false);

  {
    // A hostile length prefix: typed error reply, then the connection is
    // dropped (the stream cannot be resynced).
    ServeClient hostile = connect();
    const std::uint32_t huge = 0xfffffff0u;
    ASSERT_EQ(::write(hostile.write_fd(), &huge, 4), 4);
    Frame response;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    ASSERT_EQ(read_frame(hostile.write_fd(), response, kind, message),
              ReadStatus::kFrame);
    WireReader reader(response.body);
    EXPECT_EQ(error_kind_for_status(reader.u8()), ErrorKind::kCorrupt);
    EXPECT_EQ(read_frame(hostile.write_fd(), response, kind, message),
              ReadStatus::kEof);
  }

  // Sessions are server-scoped: the hostile connection leaked nothing.
  EXPECT_EQ(server_->session_count(), 1u);
  expect_bit_identical(good.infer("s1"),
                       reference_logits(netlist, *model_));
}

TEST_F(ServeServerTest, SessionLimitIsATypedResourceError) {
  ServeOptions opts = options();
  opts.max_sessions = 1;
  start(opts);
  ServeClient client = connect();
  const std::string text = canonical_circuit().text;
  client.load_session_inline("one", text, false);
  try {
    client.load_session_inline("two", text, false);
    FAIL() << "expected Error{kResource}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kResource);
  }
}

TEST_F(ServeServerTest, OverloadRepliesResourceError) {
  ServeOptions opts = options();
  opts.workers = 1;
  opts.queue_limit = 1;
  start(opts);

  // Everything on one connection: the daemon's reader admits frames in
  // arrival order, so by the time it reaches the pings the first load is
  // on the worker and the second fills the one queue slot — the pings
  // must be rejected with the typed `resource` error (never silently
  // dropped, never a hang) long before the worker drains the loads.
  const std::string big = write_bench_string(small_circuit(5, 40000));
  ServeClient client = connect();
  const auto send_load = [&](const std::string& name, std::uint32_t id) {
    Frame frame;
    frame.opcode = static_cast<std::uint8_t>(Op::kLoadSession);
    frame.request_id = id;
    WireWriter writer(frame.body);
    writer.str(name);
    writer.u8(1);  // inline .bench text
    writer.str(big);
    writer.u8(0);
    write_frame(client.write_fd(), frame);
  };
  send_load("big1", 1);  // queued, popped by the worker
  send_load("big2", 2);  // fills the queue (or is itself rejected)
  constexpr std::uint32_t kBurst = 16;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Frame frame;
    frame.opcode = static_cast<std::uint8_t>(Op::kPing);
    frame.request_id = 100 + i;
    write_frame(client.write_fd(), frame);
  }

  // Replies arrive in completion order (rejections first, the slow load
  // results last); classify all of them by status and request id.
  std::size_t ok = 0, overloaded = 0;
  bool big1_ok = false;
  for (std::uint32_t i = 0; i < kBurst + 2; ++i) {
    Frame response;
    ErrorKind kind = ErrorKind::kInternal;
    std::string message;
    ASSERT_EQ(read_frame(client.write_fd(), response, kind, message),
              ReadStatus::kFrame);
    WireReader reader(response.body);
    const std::uint8_t status = reader.u8();
    if (status == kStatusOk) {
      ++ok;
      if (response.request_id == 1) big1_ok = true;
    } else {
      ASSERT_EQ(error_kind_for_status(status), ErrorKind::kResource);
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst + 2);
  // The queue was empty when big1 arrived, so it must have been served.
  EXPECT_TRUE(big1_ok);
  EXPECT_GE(overloaded, 1u);
  EXPECT_GE(server_->session_count(), 1u);
}

TEST_F(ServeServerTest, ShutdownRequestDrainsAndJoins) {
  start(options());
  ServeClient client = connect();
  const Netlist netlist = small_circuit();
  client.load_session_inline("s1", write_bench_string(netlist), false);
  client.infer("s1");
  client.shutdown();  // acknowledged before the daemon exits
  server_->wait();    // must return: every thread joined, queue drained
  server_.reset();
}

TEST_F(ServeServerTest, StatsReportServing) {
  start(options());
  set_stats_enabled(true);
  ServeClient client = connect();
  client.ping();
  const std::string json = client.stats_json();
  set_stats_enabled(false);
  EXPECT_NE(json.find("serve.requests"), std::string::npos);
}

TEST_F(ServeServerTest, MetricsExpositionReportsQuantilesAndDeltas) {
  start(options());
  set_stats_enabled(true);
  StatsRegistry::instance().reset();
  ServeClient client = connect();
  const Circuit circuit = canonical_circuit();
  client.load_session_inline("s1", circuit.text, false);
  for (int i = 0; i < 4; ++i) client.infer("s1");

  const ServeClient::MetricsResult first = client.metrics(true);
  std::map<std::string, double> series;
  std::string error;
  ASSERT_TRUE(parse_prometheus_text(first.exposition, series, error))
      << error;
  EXPECT_GE(series.at("gcnt_serve_requests_total"), 5.0);
  EXPECT_GE(series.at("gcnt_serve_op_infer_total"), 4.0);
  EXPECT_EQ(series.count("gcnt_serve_request_ns{quantile=\"0.5\"}"), 1u);
  EXPECT_EQ(series.count("gcnt_serve_request_ns{quantile=\"0.99\"}"), 1u);
  EXPECT_EQ(series.count("gcnt_serve_queue_wait_us{quantile=\"0.99\"}"), 1u);
  EXPECT_EQ(series.count("gcnt_serve_batch_size{quantile=\"0.5\"}"), 1u);
  EXPECT_EQ(series.count("gcnt_serve_queue_depth"), 1u);
  // The very first scrape has no previous snapshot -> no deltas.
  EXPECT_EQ(first.exposition.find("_delta"), std::string::npos);
  // --slow dump: a JSON array whose entries carry phase timings.
  json::Value slow;
  ASSERT_TRUE(json::parse(first.slow_json, slow, error)) << error;
  ASSERT_EQ(slow.type, json::Value::Type::kArray);
  ASSERT_FALSE(slow.array.empty());
  bool saw_infer = false;
  for (const json::Value& entry : slow.array) {
    ASSERT_EQ(entry.type, json::Value::Type::kObject);
    ASSERT_NE(entry.find("rid"), nullptr);
    ASSERT_NE(entry.find("service_us"), nullptr);
    const json::Value* op = entry.find("op");
    ASSERT_NE(op, nullptr);
    if (op->text == "infer") {
      saw_infer = true;
      EXPECT_NE(entry.find("forward_us"), nullptr);
    }
  }
  EXPECT_TRUE(saw_infer);

  client.infer("s1");
  const ServeClient::MetricsResult second = client.metrics();
  std::map<std::string, double> series2;
  ASSERT_TRUE(parse_prometheus_text(second.exposition, series2, error))
      << error;
  // Second scrape reports deltas since the first: the infer + the first
  // scrape's own kMetrics request.
  EXPECT_EQ(series2.at("gcnt_serve_op_infer_delta"), 1.0);
  EXPECT_EQ(series2.at("gcnt_serve_requests_delta"), 2.0);
  EXPECT_EQ(second.slow_json, "");  // not requested this time
  set_stats_enabled(false);
}

TEST_F(ServeServerTest, AccessLogWritesOneParsableLinePerRequest) {
  const std::string log_path = model_path_ + ".access.jsonl";
  ServeOptions opts = options();
  opts.access_log = log_path;
  start(opts);
  set_stats_enabled(true);
  {
    ServeClient client = connect();
    const Circuit circuit = canonical_circuit();
    client.load_session_inline("s1", circuit.text, false);
    for (int i = 0; i < 3; ++i) client.infer("s1");
    client.ping();
    try {
      client.infer("nope");  // error replies are logged too
      FAIL() << "expected Error{kUsage}";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kUsage);
    }
  }
  set_stats_enabled(false);
  // load + 3 infers + ping + failed infer = 6 completed requests. The
  // line is written just after the reply, so briefly poll for the last.
  for (int i = 0; i < 200 && server_->access_log_lines() < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->access_log_lines(), 6u);

  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  std::size_t usage_lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    json::Value value;
    std::string error;
    ASSERT_TRUE(json::parse(line, value, error))
        << "line " << lines << ": " << error << "\n" << line;
    ASSERT_EQ(value.type, json::Value::Type::kObject);
    for (const char* key :
         {"ts_us", "rid", "request_id", "op", "service_us", "outcome"}) {
      EXPECT_NE(value.find(key), nullptr) << key << " missing: " << line;
    }
    const json::Value* outcome = value.find("outcome");
    if (outcome->text == "usage") {
      ++usage_lines;
      EXPECT_NE(value.find("error"), nullptr);
    }
  }
  EXPECT_EQ(lines, 6u);
  EXPECT_EQ(usage_lines, 1u);
  ::unlink(log_path.c_str());
}

TEST_F(ServeServerTest, SlowRingKeepsWorstRequestsSorted) {
  SlowRequestRing ring(2);
  AccessRecord fast;
  fast.rid = 1;
  fast.service_us = 10;
  AccessRecord slow;
  slow.rid = 2;
  slow.service_us = 500;
  AccessRecord slower;
  slower.rid = 3;
  slower.service_us = 900;
  ring.offer(fast);
  ring.offer(slow);
  ring.offer(slower);  // evicts `fast`

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(ring.to_json(), parsed, error)) << error;
  ASSERT_EQ(parsed.array.size(), 2u);
  EXPECT_EQ(parsed.array[0].find("rid")->number, 3.0);  // slowest first
  EXPECT_EQ(parsed.array[1].find("rid")->number, 2.0);
}

}  // namespace
}  // namespace gcnt::serve
